//! Incremental fitness re-evaluation via parent→child provenance.
//!
//! The EA's operators edit a gene window, but the scratch kernel
//! ([`crate::encoded_size_scratch`]) re-prices the whole individual — decode
//! all `L` MVs, rescan the covering, rebuild the Huffman cost — on every
//! evaluation. This module keeps the parent's work in an [`EvalCache`] and
//! re-prices an arbitrary edit window from deltas:
//!
//! 1. The edited window is decoded into the (sorted) set of MV chunks whose
//!    planes actually changed; every unchanged plane pair is reused. A
//!    point mutation changes at most one chunk; crossover and inversion
//!    windows change several.
//! 2. The covering is *patched*, not rescanned — once per changed chunk.
//!    The cache stores the covering as per-MV **owned-block bitsets** (plus
//!    a per-block owner table), so a single-MV edit is bitset algebra:
//!    blocks move **to** the edited MV (the steal set is its new match set
//!    — one pass over the [`SlicedHistogram`]'s conflict planes — masked by
//!    the blocks of earlier-ranked owners, all word operations) or **away
//!    from** it (orphan candidates are exactly its owned bits, re-flowed to
//!    the first matching MV with the weave point found by one binary search
//!    in the key-sorted covering order). Blocks owned by MVs earlier in
//!    covering order are untouched by construction. Multi-chunk edits apply
//!    this same single-MV ownership patch sequentially, chunk by chunk,
//!    against one working copy of the parent's covering — each intermediate
//!    state is the consistent covering of an intermediate genome, so the
//!    single-MV invariants hold at every step.
//! 3. The Huffman part is re-priced from **one** accumulated frequency
//!    delta ([`evotc_codes::huffman_weighted_length_delta`]) against the
//!    parent's sorted leaf queue — not one rebuild per chunk: per-MV
//!    frequency changes are netted across all chunks first, and the delta
//!    state patches its queue with a single batched merge.
//!
//! Ownership is tracked by MV (genome index) and compared via the canonical
//! [`covering_key`], so an edit that changes an MV's `N_U` — and therefore
//! its *position* in covering order — is still a patch: the key comparison
//! re-ranks the moved MV without renumbering anything.
//!
//! The incremental path is **bit-identical** to the full kernel for every
//! edit (enforced by `tests/props_incremental.rs` and the CI equivalence
//! gate); it falls back (see [`IncrementalOutcome::NeedsFull`]) only when
//! the cache is cold or shapes differ. Evaluating a child against its
//! parent's cache is a *read-only probe* by default, so one cached parent
//! can price any number of speculative children; pass `commit = true` to
//! advance the cache to the child (mutation chains). For parents shared
//! across worker threads, [`encoded_size_probe`] prices a child against a
//! `&EvalCache` — the per-call scratch lives in a caller-owned
//! [`PatchScratch`], so one immutable cached parent serves every thread
//! concurrently (see [`crate::SharedParentCache`]).

use std::ops::Range;

use evotc_bits::{SlicedHistogram, Trit};
use evotc_codes::{huffman_weighted_length_delta, HuffmanDeltaState};

use crate::kernel::block_transitions;
use crate::mvset::covering_key;

/// Sentinel in the per-block owner table: the block matches no MV.
const NO_MV: u32 = u32::MAX;

/// A parent genome's fully evaluated covering state, reusable to price
/// lightly edited children in time proportional to the edit.
///
/// Build it with [`encoded_size_rebuild`], then feed children to
/// [`encoded_size_incremental`] (or, sharing the cache read-only across
/// threads, to [`encoded_size_probe`]). One cache holds one genome; buffers
/// are retained across rebuilds, so recycling a cache for a different
/// parent costs no allocations after warm-up.
///
/// # Example
///
/// ```
/// use evotc_bits::{BlockHistogram, SlicedHistogram, TestSet, TestSetString, Trit};
/// use evotc_core::{
///     encoded_size_incremental, encoded_size_rebuild, encoded_size_scratch, EvalCache,
///     EvalScratch, IncrementalOutcome,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TestSet::parse(&["110100XX", "110000XX", "11010000"])?;
/// let hist = BlockHistogram::from_string(&TestSetString::new(&set, 4));
/// let sliced = SlicedHistogram::from_histogram(&hist);
/// let parent: Vec<Trit> = evotc_bits::parse_trits("110U0000UUUU")?;
///
/// let mut cache = EvalCache::new();
/// let full = encoded_size_rebuild(&sliced, &parent, false, &mut cache);
///
/// // Mutate one gene and re-price incrementally.
/// let mut child = parent.clone();
/// child[5] = Trit::One;
/// let inc = encoded_size_incremental(&sliced, &child, false, &(5..6), false, &mut cache);
/// let reference = encoded_size_scratch(&sliced, &child, false, &mut EvalScratch::new());
/// assert_eq!(inc, IncrementalOutcome::Size(reference));
/// // The probe left the cache on the parent: an empty edit returns its size.
/// let cached = encoded_size_incremental(&sliced, &parent, false, &(0..0), false, &mut cache);
/// assert_eq!(cached, IncrementalOutcome::Size(full));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    /// The parent's covering state — read-only during probes.
    state: CoverState,
    /// Per-call scratch for the convenience `&mut EvalCache` entry points.
    scratch: PatchScratch,
}

/// The immutable-between-edits half of an [`EvalCache`]: everything needed
/// to describe one genome's fully evaluated covering. Probing a child never
/// writes here, which is what makes a cached parent shareable across
/// threads.
#[derive(Debug, Clone, Default)]
struct CoverState {
    /// Whether the cache holds a complete evaluation.
    warm: bool,
    /// Shape tag of the held evaluation: `(K, L, distinct blocks, words per
    /// column, force_all_u)`. Incremental evaluation requires an exact match.
    shape: (usize, usize, usize, usize, bool),
    /// The exact genome the planes were decoded from — kept in sync by
    /// rebuild and every commit, so chunk detection can skip trit-identical
    /// chunks with one byte compare instead of decoding them (an average
    /// crossover window spans dozens of chunks of which only a few differ).
    genes: Vec<Trit>,
    /// Specified-position plane per MV, genome order, post-`force_all_u`.
    spec: Vec<u64>,
    /// Value plane per MV, genome order, post-`force_all_u`.
    value: Vec<u64>,
    /// `N_U` per MV (redundant with `spec`, cached for the key compares).
    nu: Vec<u32>,
    /// Genome indices sorted by [`covering_key`] — covering order.
    order: Vec<u32>,
    /// Frequency of use per MV (genome index, **not** covering position —
    /// the Huffman cost only needs the multiset, and genome indexing
    /// survives order changes).
    freq: Vec<u64>,
    /// Owning MV (genome index) per distinct block, or [`NO_MV`].
    owner: Vec<u32>,
    /// Owned-block bitset per MV (`words` words per MV, MV-major): the
    /// inverse of `owner`, kept so the ownership patch is word operations
    /// instead of per-block scans.
    owned: Vec<u64>,
    /// Bitset of blocks owned by no MV (the uncovered set).
    unowned: Vec<u64>,
    /// MV-major transposition of the MV planes: for every block position
    /// `p`, a bitmask over MVs (`ceil(L/64)` words) of those specifying `p`
    /// with logic value 1. The orphan re-flow resolves "which MVs match
    /// this block" with one OR per cared position instead of a scan over
    /// the covering order.
    mv_ones: Vec<u64>,
    /// Same layout: MVs specifying `p` with logic value 0.
    mv_zeros: Vec<u64>,
    /// Number of blocks owned by no MV (`> 0` ⇔ covering impossible).
    uncovered: usize,
    /// Total fill bits: `Σ freq[j] · N_U(j)`, maintained even while
    /// infeasible so feasibility can flip back cheaply.
    fill_bits: u64,
    /// Scan-in transition count of the held genome (the power objective;
    /// see [`crate::EvalScratch::last_scan_transitions`] for the model).
    /// Maintained — like `fill_bits` — even while infeasible; uncovered
    /// blocks contribute zero.
    scan_transitions: u64,
    /// Sorted nonzero-frequency leaf queue for Huffman delta re-pricing.
    huffman: HuffmanDeltaState,
    /// The held genome's encoded size (`None` ⇔ covering impossible).
    total: Option<u64>,
}

/// Per-call working memory of the incremental engine: mismatch planes,
/// deferred move/delta lists, the multi-chunk working copy of the covering,
/// and the Huffman patch queue. Contents carry no meaning between calls.
///
/// Every [`EvalCache`] embeds one (used by the `&mut EvalCache` entry
/// points); threads probing a **shared** parent cache own one each and pass
/// it to [`encoded_size_probe`]. Buffers grow to the largest shape seen and
/// are reused, so steady-state probes allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct PatchScratch {
    /// Mismatch bitset of the edited MV (single-chunk path and rebuild).
    mismatch: Vec<u64>,
    /// Changed chunks of the current edit: `(chunk, new spec, new value)`,
    /// ascending chunk order.
    edited: Vec<(u32, u64, u64)>,
    /// `(spec, value)` planes of the changed chunks, for the batched
    /// conflict-plane query.
    planes: Vec<(u64, u64)>,
    /// Per-chunk mismatch planes of the multi-chunk path, `words` words per
    /// changed chunk.
    multi_mismatch: Vec<u64>,
    /// Steal set of the current chunk (blocks moving to the edited MV).
    steal: Vec<u64>,
    /// Union buffer for the later-owners mask of the steal set.
    union_buf: Vec<u64>,
    /// Pre-steal snapshot of the edited MV's owned bits (the orphan
    /// re-flow candidates of the multi-chunk path).
    own_snap: Vec<u64>,
    /// `(block, new owner)` reassignments of a single-chunk evaluation.
    moves: Vec<(u32, u32)>,
    /// `(MV, frequency delta)` of a single-chunk evaluation.
    deltas: Vec<(u32, i64)>,
    /// `(old, new)` frequency changes handed to the Huffman delta.
    changes: Vec<(u64, u64)>,
    /// Patched leaf queue produced by the Huffman delta.
    huff_scratch: HuffmanDeltaState,
    /// Multi-chunk working copies of the covering state. Committing a
    /// multi-chunk edit swaps these into the state wholesale.
    w_spec: Vec<u64>,
    w_value: Vec<u64>,
    w_nu: Vec<u32>,
    w_order: Vec<u32>,
    w_freq: Vec<u64>,
    w_owner: Vec<u32>,
    w_owned: Vec<u64>,
    w_unowned: Vec<u64>,
    w_mv_ones: Vec<u64>,
    w_mv_zeros: Vec<u64>,
    /// Conflict mask over MVs of the orphan being re-flowed (`ceil(L/64)`
    /// words).
    mvmask: Vec<u64>,
    /// `(MV, original frequency)` — first-touch log of the multi-chunk
    /// path, netting per-MV frequency changes across chunks into the single
    /// accumulated Huffman delta.
    touched: Vec<(u32, u64)>,
    /// Epoch stamp per MV: `touch_epoch[j] == epoch` ⇔ MV `j` is already in
    /// `touched` this evaluation — an `O(1)` first-touch test.
    touch_epoch: Vec<u64>,
    /// Current evaluation's epoch (monotone; never reset).
    epoch: u64,
    /// Transition count of the child priced by the last probe (see
    /// [`PatchScratch::last_scan_transitions`]).
    last_transitions: u64,
    /// Used-MV count of the child priced by the last probe.
    last_used: usize,
}

impl PatchScratch {
    /// Creates empty scratch buffers; they size themselves on first use.
    pub fn new() -> Self {
        PatchScratch::default()
    }

    /// Scan-in transition count of the child priced by the last probe that
    /// answered [`IncrementalOutcome::Size`] through this scratch — the same
    /// model as [`crate::EvalScratch::last_scan_transitions`], bit-identical
    /// to what the full kernel reports for the same genome. Meaningless
    /// after a [`IncrementalOutcome::NeedsFull`] answer.
    #[inline]
    pub fn last_scan_transitions(&self) -> u64 {
        self.last_transitions
    }

    /// Number of MVs with nonzero frequency in the child priced by the last
    /// [`IncrementalOutcome::Size`] answer through this scratch — the
    /// used-symbol count that sizes the decoder.
    #[inline]
    pub fn last_used_mvs(&self) -> usize {
        self.last_used
    }
}

impl EvalCache {
    /// Creates a cold cache; buffers size themselves on first rebuild.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// Returns `true` if the cache holds a complete evaluation.
    pub fn is_warm(&self) -> bool {
        self.state.warm
    }

    /// The held genome's encoded size (`None` ⇔ covering impossible).
    ///
    /// # Panics
    ///
    /// Panics if the cache is cold.
    pub fn encoded_size(&self) -> Option<u64> {
        assert!(self.state.warm, "cache is cold");
        self.state.total
    }

    /// The held genome's scan-in transition count (the power objective; see
    /// [`crate::EvalScratch::last_scan_transitions`] for the model). Only
    /// meaningful while [`EvalCache::encoded_size`] is `Some`.
    ///
    /// # Panics
    ///
    /// Panics if the cache is cold.
    pub fn scan_transitions(&self) -> u64 {
        assert!(self.state.warm, "cache is cold");
        self.state.scan_transitions
    }

    /// Number of MVs with nonzero frequency in the held genome — the
    /// used-symbol count that sizes the decoder's MV table and FSM.
    ///
    /// # Panics
    ///
    /// Panics if the cache is cold.
    pub fn used_mvs(&self) -> usize {
        assert!(self.state.warm, "cache is cold");
        self.state.huffman.leaves().len()
    }
}

/// Outcome of [`encoded_size_incremental`] / [`encoded_size_probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementalOutcome {
    /// The child was priced against the cache: its encoded size in bits,
    /// `None` if its covering is impossible — exactly what
    /// [`crate::encoded_size_scratch`] returns for the same genome.
    Size(Option<u64>),
    /// The edit cannot be applied incrementally (cold cache or shape
    /// mismatch); run the full kernel instead.
    NeedsFull,
}

/// Decodes one `K`-trit chunk into packed `(spec, value)` planes — the same
/// branchless mapping the scratch kernel uses.
#[inline]
fn decode_chunk(chunk: &[Trit]) -> (u64, u64) {
    let mut spec = 0u64;
    let mut value = 0u64;
    for (j, &t) in chunk.iter().enumerate() {
        let idx = t.index() as u64;
        value |= (idx & 1) << j;
        spec |= ((idx >> 1) ^ 1) << j;
    }
    (spec, value)
}

/// Fully evaluates `genes` and fills `cache` with its covering state.
///
/// Returns the encoded size, **bit-identical** to
/// [`crate::encoded_size_scratch`] over the same inputs (`None` ⇔ covering
/// impossible; the cache stays warm either way, so feasibility can flip back
/// on a later edit).
///
/// # Panics
///
/// Panics if `genes` is empty or not a multiple of the block length
/// (mirroring the full kernel).
pub fn encoded_size_rebuild(
    sliced: &SlicedHistogram,
    genes: &[Trit],
    force_all_u: bool,
    cache: &mut EvalCache,
) -> Option<u64> {
    let k = sliced.block_len();
    assert!(
        !genes.is_empty() && genes.len() % k == 0,
        "genome length {} is not a positive multiple of K={k}",
        genes.len()
    );
    let l = genes.len() / k;
    let words = sliced.words_per_column();
    let n = sliced.num_distinct();
    let state = &mut cache.state;
    let scratch = &mut cache.scratch;

    state.warm = false;
    state.shape = (k, l, n, words, force_all_u);
    state.genes.clear();
    state.genes.extend_from_slice(genes);
    state.spec.clear();
    state.value.clear();
    state.nu.clear();
    for chunk in genes.chunks_exact(k) {
        let (spec, value) = decode_chunk(chunk);
        state.spec.push(spec);
        state.value.push(value);
    }
    if force_all_u {
        state.spec[l - 1] = 0;
        state.value[l - 1] = 0;
    }
    state.nu.extend(
        state
            .spec
            .iter()
            .map(|s| (k - s.count_ones() as usize) as u32),
    );
    let wl = l.div_ceil(64);
    state.mv_ones.clear();
    state.mv_ones.resize(k * wl, 0);
    state.mv_zeros.clear();
    state.mv_zeros.resize(k * wl, 0);
    for j in 0..l {
        let (jw, jbit) = (j / 64, 1u64 << (j % 64));
        let mut remaining = state.spec[j];
        while remaining != 0 {
            let p = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            if (state.value[j] >> p) & 1 == 1 {
                state.mv_ones[p * wl + jw] |= jbit;
            } else {
                state.mv_zeros[p * wl + jw] |= jbit;
            }
        }
    }

    // Covering order: the one canonical key. Keys are unique (index
    // tie-break), so the unstable sort is deterministic.
    state.order.clear();
    state.order.extend(0..l as u32);
    let nu = &state.nu;
    state
        .order
        .sort_unstable_by_key(|&j| covering_key(nu[j as usize] as usize, j as usize));

    // First-match covering scan over the bit planes, recording the owner of
    // every distinct block — as a per-block table *and* as per-MV bitsets
    // (the scratch kernel only needs frequencies; the incremental path
    // needs to know whose blocks an edit can move, in both directions).
    state.freq.clear();
    state.freq.resize(l, 0);
    state.owner.clear();
    state.owner.resize(n, NO_MV);
    state.owned.clear();
    state.owned.resize(l * words, 0);
    state.unowned.clear();
    state.unowned.resize(words, 0);
    for (w, slot) in state.unowned.iter_mut().enumerate() {
        *slot = if w == words - 1 {
            sliced.last_word_mask()
        } else {
            u64::MAX
        };
    }
    scratch.mismatch.clear();
    scratch.mismatch.resize(words, 0);
    let counts = sliced.counts();
    let mut blocks_left = n;
    let mut fill_bits = 0u64;
    let mut transitions = 0u64;
    for &j in &state.order {
        if blocks_left == 0 {
            break; // every block owned; the rest keep frequency 0
        }
        let j = j as usize;
        scratch.mismatch.iter_mut().for_each(|w| *w = 0);
        sliced.accumulate_mismatch(state.spec[j], state.value[j], &mut scratch.mismatch);
        let mut freq = 0u64;
        for (w, &mis) in scratch.mismatch.iter().enumerate() {
            let taken = state.unowned[w] & !mis;
            if taken == 0 {
                continue;
            }
            state.unowned[w] &= mis;
            state.owned[j * words + w] |= taken;
            let mut bits = taken;
            while bits != 0 {
                let d = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                state.owner[d] = j as u32;
                freq += counts[d];
                blocks_left -= 1;
                let (_, bv) = sliced.block_planes(d);
                transitions += counts[d] * block_transitions(state.value[j] | bv, k);
            }
        }
        state.freq[j] = freq;
        fill_bits += freq * state.nu[j] as u64;
    }
    state.uncovered = blocks_left;
    state.fill_bits = fill_bits;
    state.scan_transitions = transitions;
    state.huffman.reset(&state.freq);
    state.total = if blocks_left == 0 {
        Some(fill_bits + state.huffman.weighted_length())
    } else {
        None
    };
    state.warm = true;
    state.total
}

/// Prices `genes` — a copy of the cached genome except inside `edit` — by
/// patching the cache's covering instead of rescanning it.
///
/// The contract on `edit` is the engine's lineage contract (see
/// `evotc_evo::Lineage`): every position **outside** the range equals the
/// cached genome's gene; positions inside may or may not differ. An empty
/// range means an exact copy. Any window is priceable — a point mutation, a
/// multi-chunk inversion window, or the whole genome (`0..genes.len()`,
/// used when the only cached parent is a crossover child's window-content
/// donor); the cost is proportional to the number of MV chunks whose
/// planes actually changed.
///
/// With `commit = false` the cache is left on the (parent) genome it held,
/// so any number of children can be probed against it; with `commit = true`
/// the cache advances to `genes` (chains of edits).
///
/// Returns [`IncrementalOutcome::NeedsFull`] — and leaves the cache
/// untouched — when the edit is not incrementally priceable: cold cache or
/// mismatched shape (block length, genome length, distinct-block count and
/// word width, `force_all_u`). Otherwise the returned size is
/// **bit-identical** to [`crate::encoded_size_scratch`] over `genes`.
///
/// The shape tag cannot distinguish two *different* histograms with equal
/// dimensions: passing a `sliced` other than the one the cache was rebuilt
/// against is the caller's bug and silently prices garbage. Keep one cache
/// per histogram, as [`MvFitness`](crate::MvFitness) does.
pub fn encoded_size_incremental(
    sliced: &SlicedHistogram,
    genes: &[Trit],
    force_all_u: bool,
    edit: &Range<usize>,
    commit: bool,
    cache: &mut EvalCache,
) -> IncrementalOutcome {
    let EvalCache { state, scratch } = cache;
    if !shapes_match(sliced, genes, force_all_u, edit, state) {
        return IncrementalOutcome::NeedsFull;
    }
    debug_assert!(genome_matches_cache_outside(
        state,
        genes,
        sliced.block_len(),
        edit
    ));
    if edit.start == edit.end {
        record_parent_objectives(state, scratch);
        return IncrementalOutcome::Size(state.total);
    }
    detect_changed_chunks(sliced, genes, force_all_u, edit, state, scratch);
    // Adopting the child includes adopting its genes: outside `edit` they
    // equal the cached genome by the lineage contract, so syncing the
    // window keeps `state.genes` exact for the next detection fast path.
    match scratch.edited.len() {
        0 => {
            if commit {
                state.genes[edit.clone()].copy_from_slice(&genes[edit.clone()]);
            }
            record_parent_objectives(state, scratch);
            IncrementalOutcome::Size(state.total) // edit was inert
        }
        1 => {
            let (i, nspec, nvalue) = scratch.edited[0];
            let patch = probe_single(sliced, state, scratch, i as usize, nspec, nvalue);
            if commit {
                commit_single(state, scratch, &patch);
                state.genes[edit.clone()].copy_from_slice(&genes[edit.clone()]);
            }
            IncrementalOutcome::Size(patch.total)
        }
        _ => {
            let patch = probe_multi(sliced, state, scratch);
            if commit {
                commit_multi(state, scratch, &patch);
                state.genes[edit.clone()].copy_from_slice(&genes[edit.clone()]);
            }
            IncrementalOutcome::Size(patch.total)
        }
    }
}

/// Read-only form of [`encoded_size_incremental`]: prices a child against a
/// **shared** parent cache without ever writing to it, keeping the per-call
/// working memory in a caller-owned [`PatchScratch`].
///
/// This is the entry point for cross-thread cache sharing (see
/// [`crate::SharedParentCache`]): any number of worker threads can probe
/// the same `&EvalCache` concurrently, each with its own scratch. Results
/// are bit-identical to [`encoded_size_incremental`] with `commit = false`
/// over the same inputs.
///
/// # Example
///
/// ```
/// use evotc_bits::{BlockHistogram, SlicedHistogram, TestSet, TestSetString, Trit};
/// use evotc_core::{
///     encoded_size_probe, encoded_size_rebuild, encoded_size_scratch, EvalCache, EvalScratch,
///     IncrementalOutcome, PatchScratch,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TestSet::parse(&["110100XX", "110000XX", "11010000"])?;
/// let hist = BlockHistogram::from_string(&TestSetString::new(&set, 4));
/// let sliced = SlicedHistogram::from_histogram(&hist);
/// let parent: Vec<Trit> = evotc_bits::parse_trits("110U0000UUUU")?;
/// let mut cache = EvalCache::new();
/// encoded_size_rebuild(&sliced, &parent, false, &mut cache);
///
/// // An inversion window spanning two MV chunks, probed via `&EvalCache`.
/// let mut child = parent.clone();
/// child[2..7].reverse();
/// let mut scratch = PatchScratch::new();
/// let probe = encoded_size_probe(&sliced, &child, false, &(2..7), &cache, &mut scratch);
/// let full = encoded_size_scratch(&sliced, &child, false, &mut EvalScratch::new());
/// assert_eq!(probe, IncrementalOutcome::Size(full));
/// # Ok(())
/// # }
/// ```
pub fn encoded_size_probe(
    sliced: &SlicedHistogram,
    genes: &[Trit],
    force_all_u: bool,
    edit: &Range<usize>,
    cache: &EvalCache,
    scratch: &mut PatchScratch,
) -> IncrementalOutcome {
    let state = &cache.state;
    if !shapes_match(sliced, genes, force_all_u, edit, state) {
        return IncrementalOutcome::NeedsFull;
    }
    debug_assert!(genome_matches_cache_outside(
        state,
        genes,
        sliced.block_len(),
        edit
    ));
    if edit.start == edit.end {
        record_parent_objectives(state, scratch);
        return IncrementalOutcome::Size(state.total);
    }
    detect_changed_chunks(sliced, genes, force_all_u, edit, state, scratch);
    match scratch.edited.len() {
        0 => {
            record_parent_objectives(state, scratch);
            IncrementalOutcome::Size(state.total)
        }
        1 => {
            let (i, nspec, nvalue) = scratch.edited[0];
            let patch = probe_single(sliced, state, scratch, i as usize, nspec, nvalue);
            IncrementalOutcome::Size(patch.total)
        }
        _ => IncrementalOutcome::Size(probe_multi(sliced, state, scratch).total),
    }
}

/// The child equals the cached parent: its side-channel objectives are the
/// parent's own.
fn record_parent_objectives(state: &CoverState, scratch: &mut PatchScratch) {
    scratch.last_transitions = state.scan_transitions;
    scratch.last_used = state.huffman.leaves().len();
}

/// [`encoded_size_probe`] with a **cost gate** on the multi-chunk path:
/// when the estimated ownership-patch work exceeds the estimated cost of a
/// full rescan, the probe answers [`IncrementalOutcome::NeedsFull`] up
/// front instead of paying patch overhead for no savings.
///
/// The estimate comes from the parent's owned-bitset popcounts: patching a
/// chunk re-flows every block the edited MV owned, and each orphan costs a
/// mask OR over `K` MV-major columns plus matcher key evaluations — for an
/// inversion-scrambled parent whose edited MVs own a large share of the
/// blocks, that approaches (or exceeds) the `L·(K+2)·words` word-ops of the
/// full kernel. Whenever this gate answers `Size`, the result is
/// bit-identical to [`encoded_size_probe`] (it runs the identical patch);
/// the gate only converts *slow* incremental answers into `NeedsFull`, so
/// callers fall back to the full kernel exactly when that is the cheaper
/// path. Empty and single-chunk edits are never gated.
pub fn encoded_size_probe_bounded(
    sliced: &SlicedHistogram,
    genes: &[Trit],
    force_all_u: bool,
    edit: &Range<usize>,
    cache: &EvalCache,
    scratch: &mut PatchScratch,
) -> IncrementalOutcome {
    let state = &cache.state;
    if !shapes_match(sliced, genes, force_all_u, edit, state) {
        return IncrementalOutcome::NeedsFull;
    }
    debug_assert!(genome_matches_cache_outside(
        state,
        genes,
        sliced.block_len(),
        edit
    ));
    if edit.start == edit.end {
        record_parent_objectives(state, scratch);
        return IncrementalOutcome::Size(state.total);
    }
    // Budgeted chunk detection: the same window walk as the unbounded
    // probe, but the patch-cost estimate accumulates as changed chunks are
    // found, and the walk stops the moment a multi-chunk patch is already
    // estimated costlier than a full rescan — the rest of the window (for
    // an inversion child, possibly dozens of chunks) never gets decoded
    // just to confirm a foregone answer.
    let k = sliced.block_len();
    let l = genes.len() / k;
    let chunk_lo = edit.start / k;
    let chunk_hi = (edit.end - 1) / k;
    let bound = full_rescan_cost(state);
    let mut cost = patch_copy_cost(state);
    scratch.edited.clear();
    for i in chunk_lo..=chunk_hi {
        if trits_equal(&genes[i * k..(i + 1) * k], &state.genes[i * k..(i + 1) * k]) {
            continue; // identical trits decode to identical planes
        }
        let (spec, value) = if force_all_u && i == l - 1 {
            (0, 0)
        } else {
            decode_chunk(&genes[i * k..(i + 1) * k])
        };
        if (spec, value) != (state.spec[i], state.value[i]) {
            scratch.edited.push((i as u32, spec, value));
            cost += chunk_patch_cost(state, i);
            if scratch.edited.len() >= 2 && cost > bound {
                return IncrementalOutcome::NeedsFull;
            }
        }
    }
    match scratch.edited.len() {
        0 => {
            record_parent_objectives(state, scratch);
            IncrementalOutcome::Size(state.total)
        }
        1 => {
            let (i, nspec, nvalue) = scratch.edited[0];
            let patch = probe_single(sliced, state, scratch, i as usize, nspec, nvalue);
            IncrementalOutcome::Size(patch.total)
        }
        _ => IncrementalOutcome::Size(probe_multi(sliced, state, scratch).total),
    }
}

/// Estimated cost of the full kernel over the cached shape: every MV
/// filters every block column, `L · (K + 2) · words` word operations. The
/// unit calibrates the patch-cost estimates below: one full-kernel word op.
fn full_rescan_cost(state: &CoverState) -> u64 {
    let (k, l, _, words, _) = state.shape;
    (l * (k + 2) * words) as u64
}

/// Estimated cost of the working-copy memcpys a multi-chunk patch pays
/// once per probe, in [`full_rescan_cost`] units.
fn patch_copy_cost(state: &CoverState) -> u64 {
    let (k, l, _, words, _) = state.shape;
    let wl = l.div_ceil(64);
    (l * words + 2 * k * wl + 5 * l + words) as u64
}

/// Estimated cost of patching one changed chunk, in [`full_rescan_cost`]
/// units: the mismatch/steal plane work plus — the dominant term — one
/// orphan re-flow per block the edited MV currently owns. Each orphan costs
/// a mask OR over `K` MV-major columns, matcher key evaluations, and a
/// rank lookup; measured against the bit-sliced full kernel's word ops that
/// comes to roughly `8 · (K · ceil(L/64) + 8)` units per orphan (the probe
/// runs ~0.8 µs per changed chunk on the paper shape where the full rescan
/// runs ~4.4 µs, so the break-even sits near four changed chunks).
fn chunk_patch_cost(state: &CoverState, chunk: usize) -> u64 {
    let (k, l, _, words, _) = state.shape;
    let wl = l.div_ceil(64);
    let per_orphan = 8 * (k * wl + 8) as u64;
    let owned: u64 = state.owned[chunk * words..(chunk + 1) * words]
        .iter()
        .map(|w| w.count_ones() as u64)
        .sum();
    ((k + 4) * words) as u64 + owned * per_orphan
}

/// The warm/shape/edit validity gate shared by both entry points.
fn shapes_match(
    sliced: &SlicedHistogram,
    genes: &[Trit],
    force_all_u: bool,
    edit: &Range<usize>,
    state: &CoverState,
) -> bool {
    let k = sliced.block_len();
    state.warm
        && !genes.is_empty()
        && genes.len() % k == 0
        && state.shape
            == (
                k,
                genes.len() / k.max(1),
                sliced.num_distinct(),
                sliced.words_per_column(),
                force_all_u,
            )
        && edit.end <= genes.len()
        && edit.start <= edit.end
}

/// Decodes the chunks the edit window overlaps and records those whose
/// planes actually changed into `scratch.edited` (ascending chunk order).
/// `force_all_u` pins the last chunk to all-`U` regardless of its genes, so
/// edits there are inert.
fn detect_changed_chunks(
    sliced: &SlicedHistogram,
    genes: &[Trit],
    force_all_u: bool,
    edit: &Range<usize>,
    state: &CoverState,
    scratch: &mut PatchScratch,
) {
    let k = sliced.block_len();
    let l = genes.len() / k;
    let chunk_lo = edit.start / k;
    let chunk_hi = (edit.end - 1) / k;
    scratch.edited.clear();
    for i in chunk_lo..=chunk_hi {
        if trits_equal(&genes[i * k..(i + 1) * k], &state.genes[i * k..(i + 1) * k]) {
            continue; // identical trits decode to identical planes
        }
        let (spec, value) = if force_all_u && i == l - 1 {
            (0, 0)
        } else {
            decode_chunk(&genes[i * k..(i + 1) * k])
        };
        if (spec, value) != (state.spec[i], state.value[i]) {
            scratch.edited.push((i as u32, spec, value));
        }
    }
}

/// Branchless trit-slice equality (an OR-reduction of index XORs — the
/// chunk either matches fully or detection decodes it anyway, so the early
/// exit of the derived slice compare buys nothing here).
#[inline]
fn trits_equal(a: &[Trit], b: &[Trit]) -> bool {
    a.iter()
        .zip(b)
        .fold(0u8, |diff, (x, y)| diff | (x.index() ^ y.index()))
        == 0
}

/// Rank of the MV whose (unique) covering key is `key` in the key-sorted
/// `order` — a binary search instead of a linear position scan.
#[inline]
fn rank_of(order: &[u32], nu: &[u32], key: u64) -> usize {
    order.partition_point(|&j| covering_key(nu[j as usize] as usize, j as usize) < key)
}

/// Picks the new owner of an orphaned block of the edited MV `i`: the
/// minimum-covering-key MV (other than `i`) whose planes match the block,
/// competing against `i` at `new_key` when the edited MV's new planes still
/// match. The matching set comes from one OR over the MV-major planes per
/// cared block position — no covering-order scan; MVs ranked before `i`'s
/// old position never match an orphan (that is what made `i` the owner), so
/// the min-key pick over the few matchers *is* first-match covering.
#[allow(clippy::too_many_arguments)]
fn reflow_owner(
    bcare: u64,
    bvalue: u64,
    mv_ones: &[u64],
    mv_zeros: &[u64],
    wl: usize,
    l: usize,
    nu: &[u32],
    i: usize,
    new_key: u64,
    still_matched: bool,
    mvmask: &mut Vec<u64>,
) -> u32 {
    mvmask.clear();
    mvmask.resize(wl, 0);
    let mut remaining = bcare;
    while remaining != 0 {
        let p = remaining.trailing_zeros() as usize;
        remaining &= remaining - 1;
        // MVs conflicting at p: those specifying the opposite value.
        let col = if (bvalue >> p) & 1 == 1 {
            &mv_zeros[p * wl..(p + 1) * wl]
        } else {
            &mv_ones[p * wl..(p + 1) * wl]
        };
        for (m, &c) in mvmask.iter_mut().zip(col) {
            *m |= c;
        }
    }
    let (mut best, mut best_key) = if still_matched {
        (i as u32, new_key)
    } else {
        (NO_MV, u64::MAX)
    };
    for (w, &m) in mvmask.iter().enumerate() {
        let rem = l - w * 64;
        let valid = if rem >= 64 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        };
        let mut bits = !m & valid;
        if w == i / 64 {
            bits &= !(1u64 << (i % 64));
        }
        while bits != 0 {
            let j = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let key = covering_key(nu[j] as usize, j);
            if key < best_key {
                best_key = key;
                best = j as u32;
            }
        }
    }
    best
}

/// Updates the MV-major planes for MV `i` switching from `(old_spec,
/// old_value)` to `(new_spec, new_value)` — `O(K)` word updates.
#[allow(clippy::too_many_arguments)]
fn update_mv_columns(
    mv_ones: &mut [u64],
    mv_zeros: &mut [u64],
    wl: usize,
    i: usize,
    old_spec: u64,
    old_value: u64,
    new_spec: u64,
    new_value: u64,
) {
    let (jw, jbit) = (i / 64, 1u64 << (i % 64));
    let mut remaining = old_spec;
    while remaining != 0 {
        let p = remaining.trailing_zeros() as usize;
        remaining &= remaining - 1;
        if (old_value >> p) & 1 == 1 {
            mv_ones[p * wl + jw] &= !jbit;
        } else {
            mv_zeros[p * wl + jw] &= !jbit;
        }
    }
    let mut remaining = new_spec;
    while remaining != 0 {
        let p = remaining.trailing_zeros() as usize;
        remaining &= remaining - 1;
        if (new_value >> p) & 1 == 1 {
            mv_ones[p * wl + jw] |= jbit;
        } else {
            mv_zeros[p * wl + jw] |= jbit;
        }
    }
}

/// Computes the steal set of an edited MV into `steal`: the blocks its new
/// planes match (`mismatch` is the new planes' conflict set) that are
/// currently owned by an MV ranked *after* `new_key`, or by none. Pure
/// bitset algebra — the match set is masked by the owned bits of the
/// earlier-ranked MVs, walking whichever side of the covering order is
/// shorter; the edited MV's own blocks are excluded (the orphan re-flow
/// decides those).
#[allow(clippy::too_many_arguments)]
fn steal_candidates(
    sliced: &SlicedHistogram,
    order: &[u32],
    nu: &[u32],
    owned: &[u64],
    unowned: &[u64],
    i: usize,
    new_key: u64,
    mismatch: &[u64],
    steal: &mut Vec<u64>,
    union_buf: &mut Vec<u64>,
) {
    let words = sliced.words_per_column();
    steal.clear();
    steal.extend(mismatch.iter().enumerate().map(|(w, &mis)| {
        let valid = if w == words - 1 {
            sliced.last_word_mask()
        } else {
            u64::MAX
        };
        !mis & valid
    }));
    let pos = rank_of(order, nu, new_key);
    if pos <= order.len() / 2 {
        // Few earlier MVs: mask their owned blocks out directly.
        for &j in &order[..pos] {
            let j = j as usize;
            for (s, &o) in steal.iter_mut().zip(&owned[j * words..(j + 1) * words]) {
                *s &= !o;
            }
        }
    } else {
        // Few later MVs: keep only their blocks, plus the unowned ones.
        union_buf.clear();
        union_buf.extend_from_slice(unowned);
        for &j in &order[pos..] {
            let j = j as usize;
            for (u, &o) in union_buf.iter_mut().zip(&owned[j * words..(j + 1) * words]) {
                *u |= o;
            }
        }
        for (s, &u) in steal.iter_mut().zip(union_buf.iter()) {
            *s &= u;
        }
    }
    // The edited MV's current blocks are the re-flow's business either way
    // (it sits on one of the two sides above under its *old* key; this
    // final mask is what takes its blocks out regardless of which).
    for (s, &o) in steal.iter_mut().zip(&owned[i * words..(i + 1) * words]) {
        *s &= !o;
    }
}

/// Everything [`commit_single`] needs to advance the state to the child,
/// produced by the read-only [`probe_single`] pass (the block moves and
/// frequency deltas themselves are deferred in the scratch).
struct SinglePatch {
    i: usize,
    nspec: u64,
    nvalue: u64,
    nnu: u32,
    old_key: u64,
    new_key: u64,
    fill: u64,
    transitions: u64,
    uncovered: usize,
    huffman_bits: u64,
    total: Option<u64>,
}

/// Prices a single changed chunk against the state without writing to it:
/// the deferred patch (steal set, orphan re-flow, Huffman delta), kept as
/// the fast path because it avoids the working-copy memcpys of the
/// multi-chunk path.
fn probe_single(
    sliced: &SlicedHistogram,
    state: &CoverState,
    scratch: &mut PatchScratch,
    i: usize,
    nspec: u64,
    nvalue: u64,
) -> SinglePatch {
    let k = sliced.block_len();
    let words = sliced.words_per_column();
    let counts = sliced.counts();

    let nnu = (k - nspec.count_ones() as usize) as u32;
    let old_key = covering_key(state.nu[i] as usize, i);
    let new_key = covering_key(nnu as usize, i);

    // New match set of the edited MV: one pass over the conflict planes.
    scratch.mismatch.clear();
    scratch.mismatch.resize(words, 0);
    sliced.accumulate_mismatch(nspec, nvalue, &mut scratch.mismatch);

    scratch.moves.clear();
    scratch.deltas.clear();
    let mut uncovered = state.uncovered;
    // Transition deltas ride along with the ownership moves: every block
    // that changes owner (or stays with an owner whose value plane changed)
    // re-prices its decoded word. Signed accumulator: intermediate sums can
    // dip below the final value.
    let mut trans = state.scan_transitions as i64;
    let value_changed = nvalue != state.value[i];

    // Phase 1 — steal: blocks the new MV matches whose owner comes *after*
    // its new covering rank (or that no MV owns) move to i (first-match
    // covering). Blocks owned earlier are untouchable by construction:
    // their owners did not change. The steal set is bitset algebra over the
    // per-MV owned planes; only actual steals are visited.
    steal_candidates(
        sliced,
        &state.order,
        &state.nu,
        &state.owned,
        &state.unowned,
        i,
        new_key,
        &scratch.mismatch,
        &mut scratch.steal,
        &mut scratch.union_buf,
    );
    for (w, &st) in scratch.steal.iter().enumerate() {
        let mut bits = st;
        while bits != 0 {
            let d = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let a = state.owner[d];
            scratch.moves.push((d as u32, i as u32));
            add_delta(&mut scratch.deltas, i as u32, counts[d] as i64);
            let (_, bv) = sliced.block_planes(d);
            trans += (counts[d] * block_transitions(nvalue | bv, k)) as i64;
            if a == NO_MV {
                uncovered -= 1;
            } else {
                add_delta(&mut scratch.deltas, a, -(counts[d] as i64));
                trans -= (counts[d] * block_transitions(state.value[a as usize] | bv, k)) as i64;
            }
        }
    }

    // Phase 2 — re-flow every block the old MV owned (its owned bitset,
    // directly): the new owner is the first MV in the *new* covering order
    // that matches it. MVs before the old rank are unchanged and already
    // failed to match (that is what made i the owner), so the scan covers
    // only the MVs after the old rank, with the edited MV woven in at its
    // new key. The old rank and the weave point are binary searches in the
    // key-sorted order, done once per edit, not once per block — and a
    // block that still matches with no MV ranked in between stays put with
    // no scan at all.
    if state.freq[i] > 0 {
        let l = state.shape.1;
        let wl = l.div_ceil(64);
        // O(1) stay test: every competing matcher has a key above the old
        // rank's successor (MVs before the old rank never match an orphan),
        // so when the new key still precedes that successor, a block the
        // new planes match cannot move.
        let old_rank = rank_of(&state.order, &state.nu, old_key);
        debug_assert_eq!(state.order[old_rank] as usize, i);
        let stays_fast = match state.order.get(old_rank + 1) {
            Some(&j) => new_key < covering_key(state.nu[j as usize] as usize, j as usize),
            None => true,
        };
        for (w, &ow) in state.owned[i * words..(i + 1) * words].iter().enumerate() {
            let mut cand = ow;
            while cand != 0 {
                let d = w * 64 + cand.trailing_zeros() as usize;
                cand &= cand - 1;
                let still_matched = (scratch.mismatch[w] >> (d % 64)) & 1 == 0;
                // A block staying with `i` still re-prices its transitions
                // when the edit changed `i`'s value plane — its decoded
                // word changed even though ownership did not.
                let stay_delta = |bvalue: u64| {
                    (counts[d] * block_transitions(nvalue | bvalue, k)) as i64
                        - (counts[d] * block_transitions(state.value[i] | bvalue, k)) as i64
                };
                if still_matched && stays_fast {
                    if value_changed {
                        let (_, bv) = sliced.block_planes(d);
                        trans += stay_delta(bv);
                    }
                    continue; // no competitor can rank before i's new key
                }
                let (bcare, bvalue) = sliced.block_planes(d);
                let new_owner = reflow_owner(
                    bcare,
                    bvalue,
                    &state.mv_ones,
                    &state.mv_zeros,
                    wl,
                    l,
                    &state.nu,
                    i,
                    new_key,
                    still_matched,
                    &mut scratch.mvmask,
                );
                if new_owner == i as u32 {
                    if value_changed {
                        trans += stay_delta(bvalue);
                    }
                    continue; // stays put
                }
                scratch.moves.push((d as u32, new_owner));
                add_delta(&mut scratch.deltas, i as u32, -(counts[d] as i64));
                trans -= (counts[d] * block_transitions(state.value[i] | bvalue, k)) as i64;
                if new_owner == NO_MV {
                    uncovered += 1;
                } else {
                    add_delta(&mut scratch.deltas, new_owner, counts[d] as i64);
                    trans += (counts[d]
                        * block_transitions(state.value[new_owner as usize] | bvalue, k))
                        as i64;
                }
            }
        }
    }

    // Re-price: fill bits and Huffman cost from the frequency deltas.
    // fill' − fill = Σ_j Δ_j·N_U'(j) + freq(i)·(N_U'(i) − N_U(i)).
    let mut fill = state.fill_bits as i64;
    fill += state.freq[i] as i64 * (nnu as i64 - state.nu[i] as i64);
    scratch.changes.clear();
    for &(j, delta) in &scratch.deltas {
        if delta == 0 {
            continue;
        }
        let j = j as usize;
        let old = state.freq[j];
        let new = (old as i64 + delta) as u64;
        let nu_after = if j == i { nnu } else { state.nu[j] };
        fill += delta * nu_after as i64;
        scratch.changes.push((old, new));
    }
    let huffman_bits =
        huffman_weighted_length_delta(&state.huffman, &scratch.changes, &mut scratch.huff_scratch);
    let total = if uncovered == 0 {
        Some(fill as u64 + huffman_bits)
    } else {
        None
    };
    scratch.last_transitions = trans as u64;
    scratch.last_used = scratch.huff_scratch.leaves().len();
    SinglePatch {
        i,
        nspec,
        nvalue,
        nnu,
        old_key,
        new_key,
        fill: fill as u64,
        transitions: trans as u64,
        uncovered,
        huffman_bits,
        total,
    }
}

/// Advances the state to the child priced by [`probe_single`], applying the
/// deferred moves and deltas (mutation-chain semantics).
fn commit_single(state: &mut CoverState, scratch: &mut PatchScratch, patch: &SinglePatch) {
    let i = patch.i;
    let words = state.shape.3;
    for &(d, to) in &scratch.moves {
        let d = d as usize;
        let (w, bit) = (d / 64, 1u64 << (d % 64));
        let from = state.owner[d];
        if from == NO_MV {
            state.unowned[w] &= !bit;
        } else {
            state.owned[from as usize * words + w] &= !bit;
        }
        if to == NO_MV {
            state.unowned[w] |= bit;
        } else {
            state.owned[to as usize * words + w] |= bit;
        }
        state.owner[d] = to;
    }
    let wl = state.shape.1.div_ceil(64);
    update_mv_columns(
        &mut state.mv_ones,
        &mut state.mv_zeros,
        wl,
        i,
        state.spec[i],
        state.value[i],
        patch.nspec,
        patch.nvalue,
    );
    state.spec[i] = patch.nspec;
    state.value[i] = patch.nvalue;
    state.nu[i] = patch.nnu;
    if patch.new_key != patch.old_key {
        let old_rank = state
            .order
            .iter()
            .position(|&j| j as usize == i)
            .expect("cached MV is in the covering order");
        state.order.remove(old_rank);
        let nu = &state.nu;
        let at = state.order.partition_point(|&j| {
            covering_key(nu[j as usize] as usize, j as usize) < patch.new_key
        });
        state.order.insert(at, i as u32);
    }
    for &(j, delta) in &scratch.deltas {
        let slot = &mut state.freq[j as usize];
        *slot = (*slot as i64 + delta) as u64;
    }
    state.fill_bits = patch.fill;
    state.scan_transitions = patch.transitions;
    state.uncovered = patch.uncovered;
    state
        .huffman
        .adopt_leaves_from(&mut scratch.huff_scratch, patch.huffman_bits);
    state.total = patch.total;
}

/// Result of the multi-chunk working-copy patch; the patched covering
/// itself lives in the scratch's `w_*` buffers until committed.
struct MultiPatch {
    fill: u64,
    transitions: u64,
    uncovered: usize,
    huffman_bits: u64,
    total: Option<u64>,
}

/// Prices a multi-chunk edit (`scratch.edited`, two or more entries)
/// against the state without writing to it: copies the covering into the
/// scratch's working buffers, applies the single-MV ownership patch once
/// per changed chunk — each intermediate working state is the consistent
/// covering of an intermediate genome, so the per-chunk invariants hold —
/// and re-prices the Huffman cost through one netted frequency delta.
fn probe_multi(
    sliced: &SlicedHistogram,
    state: &CoverState,
    scratch: &mut PatchScratch,
) -> MultiPatch {
    let k = sliced.block_len();
    let words = sliced.words_per_column();
    let counts = sliced.counts();
    let PatchScratch {
        edited,
        planes,
        multi_mismatch,
        steal,
        union_buf,
        own_snap,
        changes,
        huff_scratch,
        w_spec,
        w_value,
        w_nu,
        w_order,
        w_freq,
        w_owner,
        w_owned,
        w_unowned,
        w_mv_ones,
        w_mv_zeros,
        mvmask,
        touched,
        touch_epoch,
        epoch,
        last_transitions,
        last_used,
        ..
    } = scratch;

    // Working copy of the covering: a handful of memcpys, paid once per
    // child instead of a full rescan.
    w_spec.clear();
    w_spec.extend_from_slice(&state.spec);
    w_value.clear();
    w_value.extend_from_slice(&state.value);
    w_nu.clear();
    w_nu.extend_from_slice(&state.nu);
    w_order.clear();
    w_order.extend_from_slice(&state.order);
    w_freq.clear();
    w_freq.extend_from_slice(&state.freq);
    w_owner.clear();
    w_owner.extend_from_slice(&state.owner);
    w_owned.clear();
    w_owned.extend_from_slice(&state.owned);
    w_unowned.clear();
    w_unowned.extend_from_slice(&state.unowned);
    w_mv_ones.clear();
    w_mv_ones.extend_from_slice(&state.mv_ones);
    w_mv_zeros.clear();
    w_mv_zeros.extend_from_slice(&state.mv_zeros);
    touched.clear();
    if touch_epoch.len() != state.freq.len() {
        touch_epoch.clear();
        touch_epoch.resize(state.freq.len(), 0);
    }
    *epoch += 1;
    let epoch = *epoch;

    // All changed chunks' match sets in one batched conflict-plane pass.
    planes.clear();
    planes.extend(edited.iter().map(|&(_, spec, value)| (spec, value)));
    multi_mismatch.clear();
    multi_mismatch.resize(planes.len() * words, 0);
    sliced.accumulate_mismatch_batch(planes, multi_mismatch);

    let l = state.shape.1;
    let wl = l.div_ceil(64);
    let mut fill = state.fill_bits as i64;
    let mut trans = state.scan_transitions as i64;
    let mut uncovered = state.uncovered;

    for (t, &(ci, nspec, nvalue)) in edited.iter().enumerate() {
        let i = ci as usize;
        let mismatch = &multi_mismatch[t * words..(t + 1) * words];
        let nnu = (k - nspec.count_ones() as usize) as u32;
        let old_nu = w_nu[i];
        let old_key = covering_key(old_nu as usize, i);
        let new_key = covering_key(nnu as usize, i);
        let freq_before = w_freq[i];
        let value_changed = nvalue != w_value[i];

        // The blocks i already owns are re-priced at the new N_U up front;
        // every later freq change against i then uses nnu.
        fill += freq_before as i64 * (nnu as i64 - old_nu as i64);

        // The orphan re-flow candidates are i's owned bits *before* the
        // steal pass adds to them (a just-stolen block provably stays: its
        // former owner's key exceeded `new_key`, so no MV before the weave
        // point matches it).
        own_snap.clear();
        own_snap.extend_from_slice(&w_owned[i * words..(i + 1) * words]);

        // Phase 1 — steal (eager: ownership and frequencies are applied to
        // the working copy immediately, with first-touch originals logged
        // for the netted Huffman delta).
        steal_candidates(
            sliced, w_order, w_nu, w_owned, w_unowned, i, new_key, mismatch, steal, union_buf,
        );
        for (w, &st) in steal.iter().enumerate() {
            let mut bits = st;
            while bits != 0 {
                let d = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let bit = 1u64 << (d % 64);
                let a = w_owner[d];
                touch(touched, touch_epoch, epoch, w_freq, ci);
                w_owner[d] = ci;
                w_owned[i * words + w] |= bit;
                w_freq[i] += counts[d];
                fill += counts[d] as i64 * nnu as i64;
                let (_, bv) = sliced.block_planes(d);
                trans += (counts[d] * block_transitions(nvalue | bv, k)) as i64;
                if a == NO_MV {
                    w_unowned[w] &= !bit;
                    uncovered -= 1;
                } else {
                    touch(touched, touch_epoch, epoch, w_freq, a);
                    w_owned[a as usize * words + w] &= !bit;
                    w_freq[a as usize] -= counts[d];
                    fill -= counts[d] as i64 * w_nu[a as usize] as i64;
                    trans -= (counts[d] * block_transitions(w_value[a as usize] | bv, k)) as i64;
                }
            }
        }

        // Phase 2 — re-flow the blocks i owned before the steal pass; same
        // min-key matcher pick as the single-chunk path, against the
        // working copy's MV-major planes.
        let old_rank = rank_of(w_order, w_nu, old_key);
        debug_assert_eq!(w_order[old_rank] as usize, i);
        if freq_before > 0 {
            // O(1) stay test, as in the single-chunk path.
            let stays_fast = match w_order.get(old_rank + 1) {
                Some(&j) => new_key < covering_key(w_nu[j as usize] as usize, j as usize),
                None => true,
            };
            for (w, &ow) in own_snap.iter().enumerate() {
                let mut cand = ow;
                while cand != 0 {
                    let d = w * 64 + cand.trailing_zeros() as usize;
                    cand &= cand - 1;
                    let still_matched = (mismatch[w] >> (d % 64)) & 1 == 0;
                    // Same stay re-pricing as the single-chunk path, against
                    // the working copy's value planes.
                    let stay_delta = |bvalue: u64| {
                        (counts[d] * block_transitions(nvalue | bvalue, k)) as i64
                            - (counts[d] * block_transitions(w_value[i] | bvalue, k)) as i64
                    };
                    if still_matched && stays_fast {
                        if value_changed {
                            let (_, bv) = sliced.block_planes(d);
                            trans += stay_delta(bv);
                        }
                        continue; // no competitor can rank before i's new key
                    }
                    let (bcare, bvalue) = sliced.block_planes(d);
                    let new_owner = reflow_owner(
                        bcare,
                        bvalue,
                        w_mv_ones,
                        w_mv_zeros,
                        wl,
                        l,
                        w_nu,
                        i,
                        new_key,
                        still_matched,
                        mvmask,
                    );
                    if new_owner == ci {
                        if value_changed {
                            trans += stay_delta(bvalue);
                        }
                        continue; // stays put
                    }
                    let bit = 1u64 << (d % 64);
                    touch(touched, touch_epoch, epoch, w_freq, ci);
                    w_owner[d] = new_owner;
                    w_owned[i * words + w] &= !bit;
                    w_freq[i] -= counts[d];
                    fill -= counts[d] as i64 * nnu as i64;
                    trans -= (counts[d] * block_transitions(w_value[i] | bvalue, k)) as i64;
                    if new_owner == NO_MV {
                        w_unowned[w] |= bit;
                        uncovered += 1;
                    } else {
                        touch(touched, touch_epoch, epoch, w_freq, new_owner);
                        w_owned[new_owner as usize * words + w] |= bit;
                        w_freq[new_owner as usize] += counts[d];
                        fill += counts[d] as i64 * w_nu[new_owner as usize] as i64;
                        trans += (counts[d]
                            * block_transitions(w_value[new_owner as usize] | bvalue, k))
                            as i64;
                    }
                }
            }
        }

        // Commit this chunk's planes and covering rank to the working copy;
        // the next chunk patches against a fully consistent state.
        update_mv_columns(
            w_mv_ones, w_mv_zeros, wl, i, w_spec[i], w_value[i], nspec, nvalue,
        );
        w_spec[i] = nspec;
        w_value[i] = nvalue;
        w_nu[i] = nnu;
        if new_key != old_key {
            w_order.remove(old_rank);
            let nu = &*w_nu;
            let at = w_order
                .partition_point(|&j| covering_key(nu[j as usize] as usize, j as usize) < new_key);
            w_order.insert(at, ci);
        }
    }

    // One netted Huffman delta for the whole window: per-MV changes are
    // first-touch originals vs final working frequencies, so an MV bounced
    // through several chunks contributes one change (or none).
    changes.clear();
    for &(j, orig) in touched.iter() {
        let cur = w_freq[j as usize];
        if orig != cur {
            changes.push((orig, cur));
        }
    }
    let huffman_bits = huffman_weighted_length_delta(&state.huffman, changes, huff_scratch);
    let total = if uncovered == 0 {
        Some(fill as u64 + huffman_bits)
    } else {
        None
    };
    *last_transitions = trans as u64;
    *last_used = huff_scratch.leaves().len();
    MultiPatch {
        fill: fill as u64,
        transitions: trans as u64,
        uncovered,
        huffman_bits,
        total,
    }
}

/// Advances the state to the child priced by [`probe_multi`]: the patched
/// working buffers are swapped in wholesale (`O(1)` per array; the state's
/// old buffers become next call's working storage).
fn commit_multi(state: &mut CoverState, scratch: &mut PatchScratch, patch: &MultiPatch) {
    std::mem::swap(&mut state.spec, &mut scratch.w_spec);
    std::mem::swap(&mut state.value, &mut scratch.w_value);
    std::mem::swap(&mut state.nu, &mut scratch.w_nu);
    std::mem::swap(&mut state.order, &mut scratch.w_order);
    std::mem::swap(&mut state.freq, &mut scratch.w_freq);
    std::mem::swap(&mut state.owner, &mut scratch.w_owner);
    std::mem::swap(&mut state.owned, &mut scratch.w_owned);
    std::mem::swap(&mut state.unowned, &mut scratch.w_unowned);
    std::mem::swap(&mut state.mv_ones, &mut scratch.w_mv_ones);
    std::mem::swap(&mut state.mv_zeros, &mut scratch.w_mv_zeros);
    state.fill_bits = patch.fill;
    state.scan_transitions = patch.transitions;
    state.uncovered = patch.uncovered;
    state
        .huffman
        .adopt_leaves_from(&mut scratch.huff_scratch, patch.huffman_bits);
    state.total = patch.total;
}

/// Accumulates a frequency delta for one MV (tiny linear-probed list — a
/// single edit touches a handful of MVs).
#[inline]
fn add_delta(deltas: &mut Vec<(u32, i64)>, j: u32, delta: i64) {
    if let Some(entry) = deltas.iter_mut().find(|(jj, _)| *jj == j) {
        entry.1 += delta;
    } else {
        deltas.push((j, delta));
    }
}

/// Records MV `j`'s frequency before its first modification of this
/// evaluation (idempotent — later touches are no-ops, detected in `O(1)`
/// by the per-MV epoch stamp), feeding the netted Huffman delta.
#[inline]
fn touch(touched: &mut Vec<(u32, u64)>, touch_epoch: &mut [u64], epoch: u64, freq: &[u64], j: u32) {
    let slot = &mut touch_epoch[j as usize];
    if *slot != epoch {
        *slot = epoch;
        touched.push((j, freq[j as usize]));
    }
}

/// Debug-build check of the lineage contract: outside the edited chunks the
/// genome must decode to exactly the cached planes. A caller handing a
/// genome with undeclared differences would silently get the wrong fitness;
/// this makes it loud where tests run.
#[cfg(debug_assertions)]
fn genome_matches_cache_outside(
    state: &CoverState,
    genes: &[Trit],
    k: usize,
    edit: &Range<usize>,
) -> bool {
    let force_all_u = state.shape.4;
    let l = genes.len() / k;
    let chunk_lo = edit.start / k;
    let chunk_hi = if edit.is_empty() {
        chunk_lo
    } else {
        (edit.end - 1) / k
    };
    for i in 0..l {
        if !edit.is_empty() && (chunk_lo..=chunk_hi).contains(&i) {
            continue;
        }
        let decoded = if force_all_u && i == l - 1 {
            (0, 0)
        } else {
            decode_chunk(&genes[i * k..(i + 1) * k])
        };
        if decoded != (state.spec[i], state.value[i]) {
            return false;
        }
    }
    true
}

/// Release builds compile the `debug_assert!` call away to a constant, so
/// the contract check costs nothing on the hot path.
#[cfg(not(debug_assertions))]
#[inline(always)]
fn genome_matches_cache_outside(
    _state: &CoverState,
    _genes: &[Trit],
    _k: usize,
    _edit: &Range<usize>,
) -> bool {
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{encoded_size_scratch, EvalScratch};
    use evotc_bits::{BlockHistogram, TestSet, TestSetString};

    fn fixtures(rows: &[&str], k: usize) -> SlicedHistogram {
        let set = TestSet::parse(rows).unwrap();
        let hist = BlockHistogram::from_string(&TestSetString::new(&set, k));
        SlicedHistogram::from_histogram(&hist)
    }

    fn genes(s: &str) -> Vec<Trit> {
        evotc_bits::parse_trits(&s.replace(' ', "")).unwrap()
    }

    /// Applies every single-gene edit to `parent` and checks the incremental
    /// price (probe and commit) against the full kernel.
    fn exhaustive_single_gene_edits(sliced: &SlicedHistogram, parent: &[Trit], force: bool) {
        let mut scratch = EvalScratch::new();
        for pos in 0..parent.len() {
            for g in 0..3u8 {
                let mut cache = EvalCache::new();
                encoded_size_rebuild(sliced, parent, force, &mut cache);
                let mut child = parent.to_vec();
                child[pos] = Trit::from_index(g);
                let expect = encoded_size_scratch(sliced, &child, force, &mut scratch);
                let expect_trans = scratch.last_scan_transitions();
                let expect_used = scratch.last_used_mvs();
                for commit in [false, true] {
                    let got = encoded_size_incremental(
                        sliced,
                        &child,
                        force,
                        &(pos..pos + 1),
                        commit,
                        &mut cache,
                    );
                    assert_eq!(
                        got,
                        IncrementalOutcome::Size(expect),
                        "pos {pos} gene {g} commit {commit} parent {parent:?}"
                    );
                }
                // After the commit the cache prices the child as its own —
                // size, transition count and used-MV count alike.
                assert_eq!(cache.encoded_size(), expect);
                assert_eq!(cache.scan_transitions(), expect_trans, "pos {pos} gene {g}");
                assert_eq!(cache.used_mvs(), expect_used, "pos {pos} gene {g}");
            }
        }
    }

    #[test]
    fn single_gene_edits_match_full_kernel() {
        let sliced = fixtures(
            &["110100XX", "110000XX", "11010000", "110X00XX", "11010011"],
            8,
        );
        for parent in [
            genes("110U00UU 00000000 UUUUUUUU"),
            genes("11010000 110000UU UUUUUUUU"),
            genes("110U00UU 110U00UU UUUUUUUU"), // duplicate MVs
        ] {
            exhaustive_single_gene_edits(&sliced, &parent, false);
            exhaustive_single_gene_edits(&sliced, &parent, true);
        }
    }

    /// Applies every `width`-gene window rewrite to `parent` and checks the
    /// incremental price (probe, shared probe, and commit) against the full
    /// kernel. Windows straddle chunk boundaries by construction whenever
    /// `width > 1` and the genome has several chunks.
    fn exhaustive_window_edits(
        sliced: &SlicedHistogram,
        parent: &[Trit],
        width: usize,
        force: bool,
    ) {
        let mut scratch = EvalScratch::new();
        let mut probe_scratch = PatchScratch::new();
        for start in 0..=parent.len() - width {
            let mut cache = EvalCache::new();
            encoded_size_rebuild(sliced, parent, force, &mut cache);
            let mut child = parent.to_vec();
            for (offset, slot) in child[start..start + width].iter_mut().enumerate() {
                *slot = Trit::from_index(((start + 2 * offset) % 3) as u8);
            }
            let edit = start..start + width;
            let expect = encoded_size_scratch(sliced, &child, force, &mut scratch);
            let expect_trans = scratch.last_scan_transitions();
            let expect_used = scratch.last_used_mvs();
            let shared =
                encoded_size_probe(sliced, &child, force, &edit, &cache, &mut probe_scratch);
            assert_eq!(
                shared,
                IncrementalOutcome::Size(expect),
                "shared probe start {start} width {width}"
            );
            assert_eq!(
                probe_scratch.last_scan_transitions(),
                expect_trans,
                "probe transitions start {start} width {width}"
            );
            assert_eq!(
                probe_scratch.last_used_mvs(),
                expect_used,
                "probe used start {start} width {width}"
            );
            for commit in [false, true] {
                let got =
                    encoded_size_incremental(sliced, &child, force, &edit, commit, &mut cache);
                assert_eq!(
                    got,
                    IncrementalOutcome::Size(expect),
                    "start {start} width {width} commit {commit}"
                );
            }
            assert_eq!(cache.encoded_size(), expect);
            assert_eq!(
                cache.scan_transitions(),
                expect_trans,
                "committed transitions start {start} width {width}"
            );
            assert_eq!(cache.used_mvs(), expect_used);
        }
    }

    #[test]
    fn multi_chunk_window_edits_match_full_kernel() {
        let sliced = fixtures(
            &["110100XX", "110000XX", "11010000", "110X00XX", "11010011"],
            8,
        );
        for parent in [
            genes("110U00UU 00000000 11010011 UUUUUUUU"),
            genes("110U00UU 110U00UU 110U00UU UUUUUUUU"), // duplicate MVs
        ] {
            for width in [7, 12, 19, parent.len()] {
                exhaustive_window_edits(&sliced, &parent, width, false);
                exhaustive_window_edits(&sliced, &parent, width, true);
            }
        }
    }

    /// The cost gate is allowed to answer `NeedsFull`, but whenever it
    /// answers `Size` the value must be the full kernel's — over every
    /// window edit of several widths, including whole-genome rewrites.
    #[test]
    fn bounded_probe_sizes_match_full_kernel() {
        let sliced = fixtures(
            &["110100XX", "110000XX", "11010000", "110X00XX", "11010011"],
            8,
        );
        let mut scratch = EvalScratch::new();
        let mut probe_scratch = PatchScratch::new();
        for parent in [
            genes("110U00UU 00000000 11010011 UUUUUUUU"),
            genes("110U00UU 110U00UU 110U00UU UUUUUUUU"),
        ] {
            for force in [false, true] {
                let mut cache = EvalCache::new();
                encoded_size_rebuild(&sliced, &parent, force, &mut cache);
                for width in [1, 9, 17, parent.len()] {
                    for start in 0..=parent.len() - width {
                        let mut child = parent.clone();
                        for (offset, slot) in child[start..start + width].iter_mut().enumerate() {
                            *slot = Trit::from_index(((start + 2 * offset) % 3) as u8);
                        }
                        let edit = start..start + width;
                        let expect = encoded_size_scratch(&sliced, &child, force, &mut scratch);
                        match encoded_size_probe_bounded(
                            &sliced,
                            &child,
                            force,
                            &edit,
                            &cache,
                            &mut probe_scratch,
                        ) {
                            IncrementalOutcome::Size(got) => {
                                assert_eq!(got, expect, "start {start} width {width} force {force}")
                            }
                            IncrementalOutcome::NeedsFull => {
                                // Legal: the gate judged the patch more
                                // expensive than a rescan. Only possible on
                                // multi-chunk edits.
                                assert!(width > 1, "single-chunk edits are never gated");
                            }
                        }
                    }
                }
            }
        }
    }

    /// Empty and single-chunk edits bypass the gate entirely: bit-identical
    /// behavior to the plain probe, `Size` always.
    #[test]
    fn bounded_probe_never_gates_cheap_edits() {
        let sliced = fixtures(&["110100XX", "110000XX", "11010000"], 8);
        let parent = genes("110U00UU 00000000 UUUUUUUU");
        let mut cache = EvalCache::new();
        encoded_size_rebuild(&sliced, &parent, false, &mut cache);
        let mut probe_scratch = PatchScratch::new();
        // Empty edit: the cached size.
        assert_eq!(
            encoded_size_probe_bounded(
                &sliced,
                &parent,
                false,
                &(3..3),
                &cache,
                &mut probe_scratch
            ),
            IncrementalOutcome::Size(cache.encoded_size()),
        );
        // Every single-gene edit stays within one chunk and must be priced.
        let mut scratch = EvalScratch::new();
        for pos in 0..parent.len() {
            let mut child = parent.clone();
            child[pos] = Trit::from_index(((pos + 1) % 3) as u8);
            let expect = encoded_size_scratch(&sliced, &child, false, &mut scratch);
            let bounded = encoded_size_probe_bounded(
                &sliced,
                &child,
                false,
                &(pos..pos + 1),
                &cache,
                &mut probe_scratch,
            );
            assert_eq!(bounded, IncrementalOutcome::Size(expect), "pos {pos}");
            let plain = encoded_size_probe(
                &sliced,
                &child,
                false,
                &(pos..pos + 1),
                &cache,
                &mut probe_scratch,
            );
            assert_eq!(bounded, plain, "pos {pos}");
        }
    }

    /// A cold cache gives `NeedsFull` from the bounded probe too (shape
    /// gate ahead of the cost gate).
    #[test]
    fn bounded_probe_rejects_cold_cache() {
        let sliced = fixtures(&["110100XX", "110000XX"], 8);
        let child = genes("110U00UU UUUUUUUU");
        let cache = EvalCache::new();
        let mut probe_scratch = PatchScratch::new();
        assert_eq!(
            encoded_size_probe_bounded(&sliced, &child, false, &(0..4), &cache, &mut probe_scratch),
            IncrementalOutcome::NeedsFull,
        );
    }

    #[test]
    fn feasibility_flips_are_incremental() {
        let sliced = fixtures(&["1111", "0000"], 4);
        // Parent cannot cover 0000; flipping gene 4 to U widens the second
        // MV until it can.
        let parent = genes("1111 1110");
        exhaustive_single_gene_edits(&sliced, &parent, false);
        let mut cache = EvalCache::new();
        assert_eq!(
            encoded_size_rebuild(&sliced, &parent, false, &mut cache),
            None
        );
        let mut child = parent.clone();
        child[4] = Trit::X;
        child[5] = Trit::X;
        child[6] = Trit::X;
        child[7] = Trit::X;
        // A 4-gene edit inside one chunk: still a single-MV patch.
        let got = encoded_size_incremental(&sliced, &child, false, &(4..8), true, &mut cache);
        let expect = encoded_size_scratch(&sliced, &child, false, &mut EvalScratch::new());
        assert!(expect.is_some());
        assert_eq!(got, IncrementalOutcome::Size(expect));
        // ...and back to infeasible.
        let got = encoded_size_incremental(&sliced, &parent, false, &(4..8), true, &mut cache);
        assert_eq!(got, IncrementalOutcome::Size(None));
    }

    #[test]
    fn multi_chunk_feasibility_flips_are_incremental() {
        let sliced = fixtures(&["1111", "0000", "1100"], 4);
        // No MV matches 0000 or 1100: infeasible until a whole-genome edit
        // widens two chunks at once.
        let parent = genes("1111 1110 0011");
        let mut cache = EvalCache::new();
        assert_eq!(
            encoded_size_rebuild(&sliced, &parent, false, &mut cache),
            None
        );
        let child = genes("1111 UUUU 110U");
        let expect = encoded_size_scratch(&sliced, &child, false, &mut EvalScratch::new());
        assert!(expect.is_some());
        let got = encoded_size_incremental(&sliced, &child, false, &(4..12), true, &mut cache);
        assert_eq!(got, IncrementalOutcome::Size(expect));
        // ...and back to infeasible through the same multi-chunk path.
        let got = encoded_size_incremental(&sliced, &parent, false, &(4..12), true, &mut cache);
        assert_eq!(got, IncrementalOutcome::Size(None));
    }

    #[test]
    fn probes_leave_the_parent_cache_intact() {
        let sliced = fixtures(&["110100XX", "110000XX", "11010000"], 8);
        let parent = genes("110U00UU 11010000 UUUUUUUU");
        let mut cache = EvalCache::new();
        let parent_size = encoded_size_rebuild(&sliced, &parent, false, &mut cache);
        let mut scratch = EvalScratch::new();
        // Probe many children off the same cache; each must match the full
        // kernel, and the parent must still price correctly afterwards.
        for pos in 0..parent.len() {
            let mut child = parent.clone();
            child[pos] = Trit::from_index((pos % 3) as u8);
            let expect = encoded_size_scratch(&sliced, &child, false, &mut scratch);
            let got = encoded_size_incremental(
                &sliced,
                &child,
                false,
                &(pos..pos + 1),
                false,
                &mut cache,
            );
            assert_eq!(got, IncrementalOutcome::Size(expect), "pos {pos}");
        }
        // Multi-chunk probes are equally read-only.
        for start in 0..parent.len() - 10 {
            let mut child = parent.clone();
            child[start..start + 10].reverse();
            let expect = encoded_size_scratch(&sliced, &child, false, &mut scratch);
            let got = encoded_size_incremental(
                &sliced,
                &child,
                false,
                &(start..start + 10),
                false,
                &mut cache,
            );
            assert_eq!(got, IncrementalOutcome::Size(expect), "window at {start}");
        }
        assert_eq!(cache.encoded_size(), parent_size);
        let again = encoded_size_incremental(&sliced, &parent, false, &(0..0), false, &mut cache);
        assert_eq!(again, IncrementalOutcome::Size(parent_size));
    }

    #[test]
    fn cold_cache_and_shape_mismatches_need_full() {
        let sliced = fixtures(&["1010", "0101"], 4);
        let g = genes("1010 UUUU");
        let mut cache = EvalCache::new();
        assert_eq!(
            encoded_size_incremental(&sliced, &g, false, &(0..1), false, &mut cache),
            IncrementalOutcome::NeedsFull
        );
        assert_eq!(
            encoded_size_probe(
                &sliced,
                &g,
                false,
                &(0..1),
                &cache,
                &mut PatchScratch::new()
            ),
            IncrementalOutcome::NeedsFull
        );
        encoded_size_rebuild(&sliced, &g, false, &mut cache);
        // Different genome length.
        let longer = genes("1010 UUUU 1111");
        assert_eq!(
            encoded_size_incremental(&sliced, &longer, false, &(8..9), false, &mut cache),
            IncrementalOutcome::NeedsFull
        );
        // Different force flag.
        assert_eq!(
            encoded_size_incremental(&sliced, &g, true, &(0..1), false, &mut cache),
            IncrementalOutcome::NeedsFull
        );
        // An edit spanning two changed chunks is *not* a fallback anymore:
        // the multi-chunk patch prices it.
        let mut two = g.clone();
        two[3] = Trit::X;
        two[4] = Trit::One;
        let expect = encoded_size_scratch(&sliced, &two, false, &mut EvalScratch::new());
        assert_eq!(
            encoded_size_incremental(&sliced, &two, false, &(3..5), false, &mut cache),
            IncrementalOutcome::Size(expect)
        );
    }

    #[test]
    fn force_all_u_makes_last_chunk_edits_inert() {
        let sliced = fixtures(&["10101010", "01010101"], 8);
        let parent = genes("10101010 00000000");
        let mut cache = EvalCache::new();
        let size = encoded_size_rebuild(&sliced, &parent, true, &mut cache);
        let mut child = parent.clone();
        child[12] = Trit::One; // inside the forced all-U chunk
        let got = encoded_size_incremental(&sliced, &child, true, &(12..13), false, &mut cache);
        assert_eq!(got, IncrementalOutcome::Size(size));
    }

    #[test]
    fn rebuild_matches_scratch_kernel() {
        let sliced = fixtures(
            &["110100XX", "110000XX", "11010000", "110X00XX", "11010011"],
            8,
        );
        let mut scratch = EvalScratch::new();
        let mut cache = EvalCache::new();
        for g in [
            genes("110U00UU 00000000 UUUUUUUU"),
            genes("11010000 110000UU UUUUUUUU"),
            genes("UUUUUUUU UUUUUUUU UUUUUUUU"),
            genes("11111111 00000000 11110000"),
        ] {
            for force in [false, true] {
                assert_eq!(
                    encoded_size_rebuild(&sliced, &g, force, &mut cache),
                    encoded_size_scratch(&sliced, &g, force, &mut scratch),
                    "genome {g:?} force {force}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a positive multiple")]
    fn rebuild_rejects_ragged_genomes() {
        let sliced = fixtures(&["1111"], 4);
        let _ = encoded_size_rebuild(&sliced, &genes("111"), false, &mut EvalCache::new());
    }
}
