//! Robust path-delay test generation.

use evotc_bits::{TestPattern, TestSet, Trit};
use evotc_netlist::{NetId, Netlist};
use evotc_sim::delay::{check_robust, enumerate_paths, Path};
use evotc_sim::simulate;

use crate::justify::justify;

/// Configuration for [`generate_path_delay_tests`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathDelayConfig {
    /// Upper bound on enumerated structural paths.
    pub max_paths: usize,
    /// Justification backtrack budget per vector.
    pub max_backtracks: usize,
}

impl Default for PathDelayConfig {
    fn default() -> Self {
        PathDelayConfig {
            max_paths: 256,
            max_backtracks: 20_000,
        }
    }
}

/// Outcome of path-delay test generation.
#[derive(Debug, Clone)]
pub struct PathDelayOutcome {
    /// The two-pattern tests, flattened: each row is `v₁ · v₂` (width `2n`),
    /// matching the shape of the paper's path-delay test sets (note the
    /// Table 2 sizes are roughly twice the circuit's stuck-at row length).
    pub tests: TestSet,
    /// Structural paths considered.
    pub paths_considered: usize,
    /// Path/transition targets robustly tested.
    pub robust_tests: usize,
    /// Targets for which no robust test was found.
    pub untestable_or_aborted: usize,
}

/// Generates robust two-pattern tests for up to `max_paths` structural
/// paths, both rising and falling launch transitions.
///
/// For each target the generator:
/// 1. justifies `v₂` (launch value at the path input, non-controlling side
///    inputs along the path);
/// 2. justifies `v₁` (initial value at the path input, *steady*
///    non-controlling side inputs where the on-path transition goes to the
///    controlling value, stable side inputs at XOR gates);
/// 3. verifies the pair with the independent robust checker from
///    `evotc-sim` and emits it only on success — the generator can be
///    incomplete, never unsound.
///
/// # Example
///
/// ```
/// use evotc_netlist::{iscas, parse_bench};
/// use evotc_atpg::generate_path_delay_tests;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c17 = parse_bench(iscas::C17_BENCH)?;
/// let outcome = generate_path_delay_tests(&c17, &Default::default());
/// assert!(outcome.robust_tests > 0);
/// assert_eq!(outcome.tests.width(), 2 * c17.num_inputs());
/// # Ok(())
/// # }
/// ```
pub fn generate_path_delay_tests(netlist: &Netlist, config: &PathDelayConfig) -> PathDelayOutcome {
    let paths = enumerate_paths(netlist, config.max_paths);
    let mut tests = TestSet::new(2 * netlist.num_inputs());
    let mut robust = 0usize;
    let mut failed = 0usize;

    for path in &paths {
        for final_value in [true, false] {
            match robust_pair(netlist, path, final_value, config.max_backtracks) {
                Some((v1, v2)) => {
                    robust += 1;
                    let combined: Vec<Trit> = v1.iter().chain(v2.iter()).collect();
                    tests
                        .push(TestPattern::from_trits(&combined))
                        .expect("combined width is 2n");
                }
                None => failed += 1,
            }
        }
    }

    PathDelayOutcome {
        tests,
        paths_considered: paths.len(),
        robust_tests: robust,
        untestable_or_aborted: failed,
    }
}

/// Builds a robust `⟨v1, v2⟩` pair for `path` with the given launch-edge
/// final value, or `None` if justification fails.
fn robust_pair(
    netlist: &Netlist,
    path: &Path,
    final_value: bool,
    max_backtracks: usize,
) -> Option<(TestPattern, TestPattern)> {
    // --- v2: launch value + non-controlling side inputs along the path.
    let mut v2_req: Vec<(NetId, bool)> = vec![(path.nets()[0], final_value)];
    for w in path.nets().windows(2) {
        let (on_path, gate) = (w[0], w[1]);
        if let Some(c) = netlist.kind(gate).controlling_value() {
            for &side in netlist.fanins(gate) {
                if side != on_path {
                    v2_req.push((side, !c));
                }
            }
        }
    }
    let v2 = justify(netlist, &v2_req, max_backtracks)?;
    let val2 = simulate(netlist, &v2);

    // --- v1: initial launch value + per-gate stability constraints derived
    // from the (now known) v2 on-path values.
    let mut v1_req: Vec<(NetId, bool)> = vec![(path.nets()[0], !final_value)];
    for w in path.nets().windows(2) {
        let (on_path, gate) = (w[0], w[1]);
        let to_value = val2[on_path.index()].to_bool()?;
        match netlist.kind(gate).controlling_value() {
            Some(c) => {
                if to_value == c {
                    // transition to controlling: steady non-controlling sides
                    for &side in netlist.fanins(gate) {
                        if side != on_path {
                            v1_req.push((side, !c));
                        }
                    }
                }
            }
            None => {
                // XOR/XNOR: stable sides (pin v1 to the v2 value).
                for &side in netlist.fanins(gate) {
                    if side != on_path {
                        if let Some(v) = val2[side.index()].to_bool() {
                            v1_req.push((side, v));
                        }
                    }
                }
            }
        }
    }
    let v1 = justify(netlist, &v1_req, max_backtracks)?;

    // --- Independent verification; reject anything not provably robust.
    check_robust(netlist, path, &v1, &v2).ok()?;
    Some((v1, v2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evotc_netlist::{generate, iscas, parse_bench, GeneratorConfig};

    #[test]
    fn c17_yields_robust_tests() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let outcome = generate_path_delay_tests(&n, &PathDelayConfig::default());
        assert_eq!(outcome.paths_considered, 11);
        // c17 is the classic robust-testability example: most targets work.
        assert!(outcome.robust_tests >= 11, "{}", outcome.robust_tests);
        assert_eq!(
            outcome.robust_tests + outcome.untestable_or_aborted,
            2 * outcome.paths_considered
        );
    }

    #[test]
    fn every_emitted_pair_is_verified_robust() {
        let n = parse_bench(iscas::S27_BENCH).unwrap();
        let outcome = generate_path_delay_tests(&n, &PathDelayConfig::default());
        // Re-split each row and re-verify against all enumerated paths: at
        // least one path must accept the pair (the generator's target).
        let paths = enumerate_paths(&n, 256);
        let width = n.num_inputs();
        for row in outcome.tests.iter() {
            let v1 = TestPattern::from_trits(&row.iter().take(width).collect::<Vec<_>>());
            let v2 = TestPattern::from_trits(&row.iter().skip(width).collect::<Vec<_>>());
            let ok = paths.iter().any(|p| check_robust(&n, p, &v1, &v2).is_ok());
            assert!(ok, "row is not robust for any path");
        }
    }

    #[test]
    fn pairs_contain_dont_cares() {
        let n = generate(&GeneratorConfig {
            inputs: 12,
            outputs: 6,
            gates: 60,
            seed: 8,
        });
        let outcome = generate_path_delay_tests(
            &n,
            &PathDelayConfig {
                max_paths: 64,
                ..Default::default()
            },
        );
        if !outcome.tests.is_empty() {
            assert!(outcome.tests.x_density() > 0.0);
        }
    }

    #[test]
    fn width_is_twice_the_inputs() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let outcome = generate_path_delay_tests(&n, &PathDelayConfig::default());
        assert_eq!(outcome.tests.width(), 10);
    }
}
