//! Automatic test pattern generation with don't-care extraction.
//!
//! The paper's experiments run on *uncompacted test sets with don't-cares*:
//! stuck-at sets in the style of Kajihara/Miyase (reference [30]) and robust
//! path-delay sets in the style of TIP (references [31, 32]). This crate
//! rebuilds that flow:
//!
//! * [`Podem`] — the classic PODEM algorithm over a five-valued D-calculus
//!   ([`dcalc`]), producing one test *cube* per fault: assigned inputs carry
//!   `0`/`1`, all other inputs stay `X`. Those `X`s are exactly the
//!   don't-cares the compression pipeline exploits.
//! * [`generate_stuck_at_tests`] — test-set generation over the collapsed
//!   fault list with bit-parallel fault dropping.
//! * [`generate_path_delay_tests`] — robust two-pattern tests for structural
//!   paths; each test is the 2n-bit concatenation `v₁ · v₂`, matching the
//!   shape of the paper's path-delay test sets.
//!
//! # Example
//!
//! ```
//! use evotc_netlist::{iscas, parse_bench};
//! use evotc_atpg::generate_stuck_at_tests;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c17 = parse_bench(iscas::C17_BENCH)?;
//! let outcome = generate_stuck_at_tests(&c17, &Default::default());
//! assert!(outcome.fault_coverage() > 0.99); // c17 is fully testable
//! assert!(outcome.tests.x_density() > 0.0); // don't-cares extracted
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dcalc;
mod justify;
mod path_delay;
mod podem;
mod stuck_at;

pub use justify::justify;
pub use path_delay::{generate_path_delay_tests, PathDelayConfig, PathDelayOutcome};
pub use podem::{Podem, PodemConfig, PodemResult};
pub use stuck_at::{generate_stuck_at_tests, StuckAtConfig, StuckAtOutcome};
