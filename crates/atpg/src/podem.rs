//! PODEM test generation for single stuck-at faults.

use evotc_bits::{TestPattern, Trit};
use evotc_netlist::{GateKind, NetId, Netlist};
use evotc_sim::StuckAtFault;

use crate::dcalc::{simulate_dv, Dv};

/// Configuration of the PODEM search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodemConfig {
    /// Abort after this many backtracks (the fault is then reported
    /// [`PodemResult::Aborted`]).
    pub max_backtracks: usize,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            max_backtracks: 10_000,
        }
    }
}

/// Outcome of a PODEM run for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemResult {
    /// A test cube: assigned inputs are specified, the rest stay `X` — the
    /// don't-cares later exploited by compression.
    Test(TestPattern),
    /// The fault is proven untestable (search space exhausted).
    Untestable,
    /// The backtrack limit was hit before a decision.
    Aborted,
}

/// The PODEM (Path-Oriented DEcision Making) algorithm: branch-and-bound
/// over primary-input assignments only, with five-valued implication.
///
/// # Example
///
/// ```
/// use evotc_netlist::{iscas, parse_bench};
/// use evotc_sim::StuckAtFault;
/// use evotc_atpg::{Podem, PodemResult};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c17 = parse_bench(iscas::C17_BENCH)?;
/// let fault = StuckAtFault::sa0(c17.outputs()[0]);
/// let result = Podem::new(&c17, Default::default()).run(fault);
/// assert!(matches!(result, PodemResult::Test(_)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Podem<'a> {
    netlist: &'a Netlist,
    config: PodemConfig,
}

struct Decision {
    input: usize,
    value: bool,
    flipped: bool,
}

impl<'a> Podem<'a> {
    /// Creates a PODEM engine for a circuit.
    pub fn new(netlist: &'a Netlist, config: PodemConfig) -> Self {
        Podem { netlist, config }
    }

    /// Generates a test cube for `fault`.
    pub fn run(&self, fault: StuckAtFault) -> PodemResult {
        let n_inputs = self.netlist.num_inputs();
        let mut assignment = vec![Trit::X; n_inputs];
        let mut stack: Vec<Decision> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            let values = simulate_dv(self.netlist, &assignment, fault.net, fault.stuck_at);
            if self.error_at_output(&values) {
                return PodemResult::Test(TestPattern::from_trits(&assignment));
            }
            let objective = self.objective(&values, fault);
            let next = objective.and_then(|(net, value)| self.backtrace(&values, net, value));
            match next {
                Some((input, value)) => {
                    assignment[input] = Trit::from_bool(value);
                    stack.push(Decision {
                        input,
                        value,
                        flipped: false,
                    });
                }
                None => {
                    // Dead end: flip the most recent unflipped decision.
                    backtracks += 1;
                    if backtracks > self.config.max_backtracks {
                        return PodemResult::Aborted;
                    }
                    loop {
                        match stack.pop() {
                            Some(d) if !d.flipped => {
                                assignment[d.input] = Trit::from_bool(!d.value);
                                stack.push(Decision {
                                    input: d.input,
                                    value: !d.value,
                                    flipped: true,
                                });
                                break;
                            }
                            Some(d) => {
                                assignment[d.input] = Trit::X;
                            }
                            None => return PodemResult::Untestable,
                        }
                    }
                }
            }
        }
    }

    fn error_at_output(&self, values: &[Dv]) -> bool {
        self.netlist
            .outputs()
            .iter()
            .any(|o| values[o.index()].is_error())
    }

    /// The next objective `(net, value)`:
    /// 1. activate the fault (good value opposite to the stuck value);
    /// 2. otherwise pick a D-frontier gate and demand the non-controlling
    ///    value on one of its unspecified side inputs.
    fn objective(&self, values: &[Dv], fault: StuckAtFault) -> Option<(NetId, bool)> {
        let at_site = values[fault.net.index()];
        if at_site.good.is_x() {
            return Some((fault.net, !fault.stuck_at));
        }
        if !at_site.is_error() {
            return None; // activation failed: good value equals stuck value
        }
        // D-frontier: gates with an error input and an X output. Scans the
        // SoA kind array directly — this loop runs once per objective.
        let kinds = self.netlist.kinds();
        for id in self.netlist.node_ids() {
            let kind = kinds[id.index()];
            if kind == GateKind::Input {
                continue;
            }
            let out = values[id.index()];
            if !out.has_x() {
                continue;
            }
            let has_error_input = self
                .netlist
                .fanins(id)
                .iter()
                .any(|f| values[f.index()].is_error());
            if !has_error_input {
                continue;
            }
            let want = match kind.controlling_value() {
                Some(c) => !c,
                None => true, // XOR-ish: any specified value propagates
            };
            if let Some(&side) = self
                .netlist
                .fanins(id)
                .iter()
                .find(|f| values[f.index()].good.is_x())
            {
                return Some((side, want));
            }
        }
        None
    }

    /// Walks from an internal objective back to an unassigned primary input,
    /// complementing the target value through inverting gates.
    fn backtrace(&self, values: &[Dv], mut net: NetId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            let kind = self.netlist.kind(net);
            if kind == GateKind::Input {
                // `input_position` is an O(1) table lookup, so the
                // backtrace costs one walk from objective to input.
                let pos = self
                    .netlist
                    .input_position(net)
                    .expect("inputs are registered");
                return values[net.index()].good.is_x().then_some((pos, value));
            }
            if kind.is_inverting() {
                value = !value;
            }
            // Follow an X-valued fanin (prefer the first — a simple,
            // deterministic heuristic).
            net = *self
                .netlist
                .fanins(net)
                .iter()
                .find(|f| values[f.index()].good.is_x())?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evotc_netlist::{iscas, parse_bench, NetlistBuilder};
    use evotc_sim::{all_faults, simulate_with_forced};

    fn c17() -> Netlist {
        parse_bench(iscas::C17_BENCH).unwrap()
    }

    /// Independently verify a generated cube by three-valued simulation.
    fn verify_detects(netlist: &Netlist, fault: StuckAtFault, cube: &TestPattern) {
        let good = evotc_sim::simulate(netlist, cube);
        let bad = simulate_with_forced(
            netlist,
            cube,
            &[(fault.net, Trit::from_bool(fault.stuck_at))],
        );
        let detected = netlist.outputs().iter().any(|o| {
            let (g, b) = (good[o.index()], bad[o.index()]);
            g.is_specified() && b.is_specified() && g != b
        });
        assert!(detected, "{fault} not detected by {cube}");
    }

    #[test]
    fn detects_every_c17_fault() {
        let n = c17();
        for fault in all_faults(&n) {
            match Podem::new(&n, PodemConfig::default()).run(fault) {
                PodemResult::Test(cube) => verify_detects(&n, fault, &cube),
                other => panic!("{fault}: c17 is fully testable, got {other:?}"),
            }
        }
    }

    #[test]
    fn cubes_contain_dont_cares() {
        let n = c17();
        let g10 = n.find_net("10").unwrap();
        if let PodemResult::Test(cube) =
            Podem::new(&n, PodemConfig::default()).run(StuckAtFault::sa0(g10))
        {
            assert!(cube.num_x() > 0, "expected unassigned inputs in {cube}");
        } else {
            panic!("fault should be testable");
        }
    }

    #[test]
    fn untestable_fault_is_proven() {
        // y = OR(x, NOT(x)) is constant 1: y/sa1 is untestable.
        let mut b = NetlistBuilder::new("const1");
        let x = b.input("x");
        let nx = b.gate("nx", GateKind::Not, vec![x]).unwrap();
        let y = b.gate("y", GateKind::Or, vec![x, nx]).unwrap();
        b.output(y);
        let n = b.finish().unwrap();
        let y = n.find_net("y").unwrap();
        let r = Podem::new(&n, PodemConfig::default()).run(StuckAtFault::sa1(y));
        assert_eq!(r, PodemResult::Untestable);
        // …while y/sa0 is testable by any input.
        let r = Podem::new(&n, PodemConfig::default()).run(StuckAtFault::sa0(y));
        assert!(matches!(r, PodemResult::Test(_)));
    }

    #[test]
    fn works_on_generated_circuits() {
        let n = evotc_netlist::generate(&evotc_netlist::GeneratorConfig {
            inputs: 10,
            outputs: 5,
            gates: 80,
            seed: 11,
        });
        let mut tested = 0;
        for fault in all_faults(&n).into_iter().take(60) {
            if let PodemResult::Test(cube) = Podem::new(&n, PodemConfig::default()).run(fault) {
                verify_detects(&n, fault, &cube);
                tested += 1;
            }
        }
        assert!(tested > 20, "only {tested} faults testable");
    }
}
