//! Stuck-at test-set generation with don't-care extraction.

use evotc_bits::{TestPattern, TestSet};
use evotc_netlist::Netlist;
use evotc_sim::{collapse_faults, detected_mask, StuckAtFault};

use crate::podem::{Podem, PodemConfig, PodemResult};

/// Configuration for [`generate_stuck_at_tests`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StuckAtConfig {
    /// PODEM search budget per fault.
    pub podem: PodemConfig,
}

/// Outcome of stuck-at test generation.
#[derive(Debug, Clone)]
pub struct StuckAtOutcome {
    /// The uncompacted test set; unassigned inputs are `X` (the don't-cares
    /// the paper's compression pipeline feeds on).
    pub tests: TestSet,
    /// Faults targeted after collapsing.
    pub num_faults: usize,
    /// Faults detected (by generation or by fault dropping).
    pub detected: usize,
    /// Faults proven untestable.
    pub untestable: usize,
    /// Faults aborted (budget exhausted).
    pub aborted: usize,
}

impl StuckAtOutcome {
    /// Fault coverage over testable faults, in `[0, 1]`.
    pub fn fault_coverage(&self) -> f64 {
        let testable = self.num_faults - self.untestable;
        if testable == 0 {
            return 1.0;
        }
        self.detected as f64 / testable as f64
    }
}

/// Generates an uncompacted stuck-at test set in the style of the paper's
/// reference \[30\]: one PODEM cube per undetected fault, don't-cares left
/// in place, **no compaction or reordering** (code-based compression must
/// preserve the set as-is, so we generate it as-is).
///
/// Fault dropping uses bit-parallel fault simulation with zero-filled
/// don't-cares, so later faults that happen to be covered by earlier cubes
/// are skipped — this is what makes the sets "uncompacted but not absurdly
/// redundant", matching the sizes the paper reports.
///
/// # Example
///
/// See the [crate-level documentation](crate).
pub fn generate_stuck_at_tests(netlist: &Netlist, config: &StuckAtConfig) -> StuckAtOutcome {
    let faults = collapse_faults(netlist);
    let num_faults = faults.len();
    let mut dropped = vec![false; num_faults];
    let mut tests = TestSet::new(netlist.num_inputs());
    let mut detected = 0usize;
    let mut untestable = 0usize;
    let mut aborted = 0usize;

    let podem = Podem::new(netlist, config.podem);
    for i in 0..num_faults {
        if dropped[i] {
            continue;
        }
        match podem.run(faults[i]) {
            PodemResult::Test(cube) => {
                detected += 1;
                dropped[i] = true;
                drop_faults(netlist, &cube, &faults, &mut dropped, &mut detected);
                tests.push(cube).expect("cube width equals input count");
            }
            PodemResult::Untestable => {
                untestable += 1;
                dropped[i] = true;
            }
            PodemResult::Aborted => {
                aborted += 1;
                dropped[i] = true;
            }
        }
    }

    StuckAtOutcome {
        tests,
        num_faults,
        detected,
        untestable,
        aborted,
    }
}

/// Marks every remaining fault detected by `cube` (zero-filled) as dropped.
fn drop_faults(
    netlist: &Netlist,
    cube: &TestPattern,
    faults: &[StuckAtFault],
    dropped: &mut [bool],
    detected: &mut usize,
) {
    let filled = cube.fill_x(false);
    let inputs: Vec<u64> = (0..netlist.num_inputs())
        .map(|j| {
            let t = filled.try_trit(j).expect("width matches input count");
            u64::from(t.to_bool().expect("filled"))
        })
        .collect();
    for (i, &fault) in faults.iter().enumerate() {
        if dropped[i] {
            continue;
        }
        if detected_mask(netlist, fault, &inputs) & 1 == 1 {
            dropped[i] = true;
            *detected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evotc_netlist::{generate, iscas, parse_bench, GeneratorConfig};

    #[test]
    fn c17_reaches_full_coverage() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let outcome = generate_stuck_at_tests(&n, &StuckAtConfig::default());
        assert_eq!(outcome.untestable, 0);
        assert_eq!(outcome.aborted, 0);
        assert!((outcome.fault_coverage() - 1.0).abs() < 1e-12);
        assert!(outcome.tests.num_patterns() >= 4);
        assert!(outcome.tests.num_patterns() <= outcome.num_faults);
    }

    #[test]
    fn s27_combinational_part_is_testable() {
        let n = parse_bench(iscas::S27_BENCH).unwrap();
        let outcome = generate_stuck_at_tests(&n, &StuckAtConfig::default());
        assert!(outcome.fault_coverage() > 0.99);
        assert_eq!(outcome.tests.width(), 7);
    }

    #[test]
    fn test_sets_carry_dont_cares() {
        let n = generate(&GeneratorConfig {
            inputs: 16,
            outputs: 8,
            gates: 120,
            seed: 5,
        });
        let outcome = generate_stuck_at_tests(&n, &StuckAtConfig::default());
        assert!(
            outcome.tests.x_density() > 0.1,
            "expected don't-cares, density {}",
            outcome.tests.x_density()
        );
    }

    #[test]
    fn fault_dropping_shrinks_pattern_count() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let outcome = generate_stuck_at_tests(&n, &StuckAtConfig::default());
        // Without dropping there would be one pattern per collapsed fault.
        assert!(outcome.tests.num_patterns() < outcome.num_faults);
    }
}
