//! Multi-objective line justification.
//!
//! Path-delay test generation needs test cubes that set several internal
//! nets to required values simultaneously (the on-path and side-input
//! constraints). This module implements a PODEM-style branch-and-bound over
//! primary inputs for a conjunction of `(net, value)` objectives.

use evotc_bits::{TestPattern, Trit};
use evotc_netlist::{GateKind, NetId, Netlist};
use evotc_sim::simulate;

/// Finds a test cube satisfying all `(net, value)` requirements, or `None`
/// if the search space is exhausted / the backtrack budget is spent.
///
/// Returned cubes leave unassigned inputs at `X` (don't-cares).
///
/// # Panics
///
/// Panics if a required net id is out of range.
///
/// # Example
///
/// ```
/// use evotc_netlist::{iscas, parse_bench};
/// use evotc_atpg::justify;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c17 = parse_bench(iscas::C17_BENCH)?;
/// let g22 = c17.find_net("22").unwrap();
/// let cube = justify(&c17, &[(g22, true)], 10_000).expect("justifiable");
/// let values = evotc_sim::simulate(&c17, &cube);
/// assert_eq!(values[g22.index()], evotc_bits::Trit::One);
/// # Ok(())
/// # }
/// ```
pub fn justify(
    netlist: &Netlist,
    required: &[(NetId, bool)],
    max_backtracks: usize,
) -> Option<TestPattern> {
    let mut assignment = vec![Trit::X; netlist.num_inputs()];
    let mut stack: Vec<(usize, bool, bool)> = Vec::new(); // (input, value, flipped)
    let mut backtracks = 0usize;

    loop {
        let values = simulate(netlist, &TestPattern::from_trits(&assignment));
        // Check feasibility and find the first open objective.
        let mut open: Option<(NetId, bool)> = None;
        let mut conflict = false;
        for &(net, want) in required {
            match values[net.index()].to_bool() {
                Some(v) if v == want => {}
                Some(_) => {
                    conflict = true;
                    break;
                }
                None => {
                    if open.is_none() {
                        open = Some((net, want));
                    }
                }
            }
        }
        if !conflict {
            match open {
                None => return Some(TestPattern::from_trits(&assignment)),
                Some((net, want)) => {
                    if let Some((input, value)) = backtrace(netlist, &values, net, want) {
                        assignment[input] = Trit::from_bool(value);
                        stack.push((input, value, false));
                        continue;
                    }
                    // fall through to backtrack
                }
            }
        }
        backtracks += 1;
        if backtracks > max_backtracks {
            return None;
        }
        loop {
            match stack.pop() {
                Some((input, value, false)) => {
                    assignment[input] = Trit::from_bool(!value);
                    stack.push((input, !value, true));
                    break;
                }
                Some((input, _, true)) => {
                    assignment[input] = Trit::X;
                }
                None => return None,
            }
        }
    }
}

fn backtrace(
    netlist: &Netlist,
    values: &[Trit],
    mut net: NetId,
    mut value: bool,
) -> Option<(usize, bool)> {
    loop {
        if netlist.kind(net) == GateKind::Input {
            let pos = netlist.input_position(net).expect("registered input");
            return values[net.index()].is_x().then_some((pos, value));
        }
        if netlist.kind(net).is_inverting() {
            value = !value;
        }
        net = *netlist
            .fanins(net)
            .iter()
            .find(|f| values[f.index()].is_x())?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evotc_netlist::{iscas, parse_bench, NetlistBuilder};

    #[test]
    fn justifies_conjunction() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let g22 = n.find_net("22").unwrap();
        let g23 = n.find_net("23").unwrap();
        for (a, b) in [(true, true), (true, false), (false, true)] {
            let cube = justify(&n, &[(g22, a), (g23, b)], 10_000)
                .unwrap_or_else(|| panic!("({a},{b}) should be justifiable"));
            let values = simulate(&n, &cube);
            assert_eq!(values[g22.index()].to_bool(), Some(a));
            assert_eq!(values[g23.index()].to_bool(), Some(b));
        }
    }

    #[test]
    fn infeasible_conjunction_returns_none() {
        // y = NOT(x): require x=1 and y=1 simultaneously.
        let mut b = NetlistBuilder::new("inv");
        let x = b.input("x");
        let y = b.gate("y", GateKind::Not, vec![x]).unwrap();
        b.output(y);
        let n = b.finish().unwrap();
        assert!(justify(&n, &[(x, true), (y, true)], 1_000).is_none());
    }

    #[test]
    fn empty_requirements_need_no_assignments() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let cube = justify(&n, &[], 10).unwrap();
        assert_eq!(cube.num_x(), n.num_inputs());
    }

    #[test]
    fn leaves_unneeded_inputs_unassigned() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let g10 = n.find_net("10").unwrap(); // NAND(1, 3)
        let cube = justify(&n, &[(g10, false)], 10_000).unwrap();
        // Only inputs 1 and 3 are needed; at least 3 of 5 stay X.
        assert!(cube.num_x() >= 3, "{cube}");
    }
}
