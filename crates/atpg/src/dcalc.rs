//! The five-valued D-calculus as good/faulty value pairs.
//!
//! Roth's five values `{0, 1, X, D, D̄}` are represented as a pair of
//! three-valued planes: `D = (good 1, faulty 0)`, `D̄ = (good 0, faulty 1)`.
//! Gate evaluation simply evaluates both planes with the three-valued
//! semantics from `evotc-sim`, which is equivalent to the classic tables
//! and keeps one source of truth for gate behaviour.

use evotc_bits::Trit;
use evotc_netlist::{GateKind, NetId, Netlist};
use evotc_sim::eval_gate;

/// A five-valued circuit value: the good-machine and faulty-machine values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dv {
    /// Value in the fault-free circuit.
    pub good: Trit,
    /// Value in the faulty circuit.
    pub faulty: Trit,
}

impl Dv {
    /// The unknown value `X` (both planes unknown).
    pub const X: Dv = Dv {
        good: Trit::X,
        faulty: Trit::X,
    };

    /// The error value `D` (good 1, faulty 0).
    pub const D: Dv = Dv {
        good: Trit::One,
        faulty: Trit::Zero,
    };

    /// The error value `D̄` (good 0, faulty 1).
    pub const DBAR: Dv = Dv {
        good: Trit::Zero,
        faulty: Trit::One,
    };

    /// A fault-free constant (both planes equal).
    pub fn stable(value: bool) -> Dv {
        let t = Trit::from_bool(value);
        Dv { good: t, faulty: t }
    }

    /// Returns `true` if the value carries a fault effect (`D` or `D̄`).
    pub fn is_error(self) -> bool {
        matches!(
            (self.good.to_bool(), self.faulty.to_bool()),
            (Some(g), Some(f)) if g != f
        )
    }

    /// Returns `true` if either plane is unknown.
    pub fn has_x(self) -> bool {
        self.good.is_x() || self.faulty.is_x()
    }
}

/// Simulates the whole circuit in the five-valued calculus: `assignment[j]`
/// drives input `j` on both planes; the fault site is forced to the stuck
/// value on the faulty plane only.
///
/// Returns one [`Dv`] per net.
pub fn simulate_dv(
    netlist: &Netlist,
    assignment: &[Trit],
    fault_net: NetId,
    stuck_at: bool,
) -> Vec<Dv> {
    assert_eq!(
        assignment.len(),
        netlist.num_inputs(),
        "assignment width mismatch"
    );
    let mut values = vec![Dv::X; netlist.num_nodes()];
    for (j, &input) in netlist.inputs().iter().enumerate() {
        values[input.index()] = Dv {
            good: assignment[j],
            faulty: assignment[j],
        };
    }
    let mut good_buf: Vec<Trit> = Vec::with_capacity(8);
    let mut faulty_buf: Vec<Trit> = Vec::with_capacity(8);
    let kinds = netlist.kinds();
    for id in netlist.node_ids() {
        let kind = kinds[id.index()];
        if kind != GateKind::Input {
            good_buf.clear();
            faulty_buf.clear();
            for &f in netlist.fanins(id) {
                good_buf.push(values[f.index()].good);
                faulty_buf.push(values[f.index()].faulty);
            }
            values[id.index()] = Dv {
                good: eval_gate(kind, &good_buf),
                faulty: eval_gate(kind, &faulty_buf),
            };
        }
        if id == fault_net {
            values[id.index()].faulty = Trit::from_bool(stuck_at);
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use evotc_netlist::{iscas, parse_bench};

    #[test]
    fn constants() {
        assert!(Dv::D.is_error());
        assert!(Dv::DBAR.is_error());
        assert!(!Dv::X.is_error());
        assert!(Dv::X.has_x());
        assert!(!Dv::stable(true).is_error());
    }

    #[test]
    fn fault_site_diverges_when_activated() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let g10 = n.find_net("10").unwrap();
        // all-zero inputs: good 10 = NAND(0,0) = 1; sa0 makes it D.
        let assignment = vec![Trit::Zero; 5];
        let values = simulate_dv(&n, &assignment, g10, false);
        assert_eq!(values[g10.index()], Dv::D);
        // 22 = NAND(10, 16): good NAND(1,1)=0, faulty NAND(0,1)=1 -> DBAR
        let g22 = n.find_net("22").unwrap();
        assert_eq!(values[g22.index()], Dv::DBAR);
    }

    #[test]
    fn unactivated_fault_produces_no_error() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let g10 = n.find_net("10").unwrap();
        // inputs 1=0,3=1 -> 10 = NAND(0,1) = 1... need good = 0 for sa0 to
        // be silent: 1=1, 3=1 gives NAND(1,1)=0 == stuck value.
        let mut assignment = vec![Trit::Zero; 5];
        assignment[0] = Trit::One; // input "1"
        assignment[2] = Trit::One; // input "3"
        let values = simulate_dv(&n, &assignment, g10, false);
        assert!(!values[g10.index()].is_error());
        for id in n.node_ids() {
            assert!(!values[id.index()].is_error());
        }
    }

    #[test]
    fn x_inputs_leave_planes_unknown() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let g10 = n.find_net("10").unwrap();
        let values = simulate_dv(&n, &[Trit::X; 5], g10, false);
        // fault site: good X, faulty 0
        assert_eq!(values[g10.index()].faulty, Trit::Zero);
        assert!(values[g10.index()].good.is_x());
    }
}
