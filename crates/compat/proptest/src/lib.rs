//! Offline, API-compatible subset of the
//! [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external dev-dependencies are vendored as small reimplementations of
//! exactly the API surface the workspace uses (see
//! `crates/compat/README.md`). For `proptest` that is:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! - integer range strategies, tuple strategies, [`collection::vec`] and
//!   [`arbitrary::any`],
//! - [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the generated inputs via the
//!   panic message; with deterministic per-case seeds the failure replays
//!   exactly, which is what CI needs.
//! - **Deterministic seeding.** Case `i` of test `t` is seeded from
//!   `hash(module_path::t, i)`, so runs are reproducible without a
//!   regression-file mechanism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn` runs `config.cases` times with fresh
/// generated inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     // In test code this fn carries #[test]; attributes pass through.
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
///
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ($($strat,)*);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ($($arg,)*) =
                    $crate::strategy::Strategy::new_value(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
