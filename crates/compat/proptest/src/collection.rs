//! Strategies for collections (only `Vec` is needed by this workspace).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive range of collection sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Returns a strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
