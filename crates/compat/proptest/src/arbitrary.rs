//! The [`Arbitrary`] trait and the [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;
use rand::Rng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Returns the canonical strategy for `T`, as in `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}
