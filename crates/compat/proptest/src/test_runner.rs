//! Test configuration and the deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generator handed to strategies.
///
/// Seeded from `(test name, case index)` so every case of every property is
/// reproducible without a regression-file mechanism.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for case `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(
            hash ^ (u64::from(case).wrapping_mul(0x9e3779b97f4a7c15)),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
