//! The [`Strategy`] trait and the combinator/range strategies built on it.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Upstream strategies also know how to *shrink*; this subset only
/// generates (see the crate docs for why that is acceptable here).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `f(v)` for every `v` this one produces.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Returns a strategy that draws `v` from `self`, then draws the final
    /// value from the strategy `f(v)`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for () {
    type Value = ();

    fn new_value(&self, _rng: &mut TestRng) {}
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
