//! Offline, API-compatible subset of the
//! [`criterion`](https://docs.rs/criterion/0.5) crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external dev-dependencies are vendored as small reimplementations of
//! exactly the API surface the workspace uses (see
//! `crates/compat/README.md`). For `criterion` that is [`Criterion`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Instead of criterion's statistical pipeline, each benchmark is warmed up
//! and then timed over a fixed wall-clock window; the mean, minimum and
//! iteration count are printed as one line per benchmark. That keeps
//! `cargo bench` useful for spotting order-of-magnitude regressions while
//! remaining dependency-free. Benchmark binaries accept (and honor) a
//! substring filter argument, and ignore the flags cargo's bench harness
//! passes (`--bench`, `--test`), so `cargo bench <filter>` and
//! `cargo test --benches` both behave.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
pub struct Criterion {
    filter: Option<String>,
    /// Wall-clock budget for the measurement phase of one benchmark.
    measurement_time: Duration,
    /// When set (`--test` from `cargo test --benches`), run each routine
    /// once for correctness instead of timing it.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut skip_value = false;
        for arg in std::env::args().skip(1) {
            if skip_value {
                skip_value = false;
                continue;
            }
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                a if a.starts_with("--") => {
                    // An unrecognized `--flag` (e.g. criterion's
                    // `--save-baseline main`) may carry a value in the next
                    // argument; skip it so it is not mistaken for a filter.
                    skip_value = !a.contains('=');
                }
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            filter,
            measurement_time: Duration::from_millis(300),
            test_mode,
        }
    }
}

impl Criterion {
    /// Times `routine` (via the [`Bencher`] it receives) and prints one
    /// summary line labelled `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
            report: None,
        };
        routine(&mut bencher);
        match bencher.report {
            Some(r) if !self.test_mode => println!(
                "{id:<40} mean {:>12} min {:>12} ({} iters)",
                format_ns(r.mean_ns),
                format_ns(r.min_ns),
                r.iters,
            ),
            _ => println!("{id:<40} ok"),
        }
        self
    }
}

struct Report {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Timer handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    measurement_time: Duration,
    test_mode: bool,
    report: Option<Report>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records wall-clock statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up iteration: pays first-call costs (lazy init, cold caches)
        // and is excluded from the reported statistics.
        black_box(routine());
        let mut iters: u64 = 0;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        // At least one timed iteration, even for routines slower than the
        // measurement window.
        while iters == 0 || total < self.measurement_time {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            iters += 1;
        }
        self.report = Some(Report {
            mean_ns: total.as_nanos() as f64 / iters as f64,
            min_ns: min.as_nanos() as f64,
            iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the given groups, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_filters() {
        let mut c = Criterion {
            filter: Some("match".into()),
            measurement_time: Duration::from_millis(5),
            test_mode: false,
        };
        let mut ran = 0;
        c.bench_function("matching", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        c.bench_function("skipped", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        assert_eq!(ran, 1);
    }

    #[test]
    fn format_ns_picks_unit() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
