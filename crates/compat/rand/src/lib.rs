//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate, version 0.8.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external dependencies are vendored as small, self-contained
//! reimplementations of exactly the API surface the workspace uses (see
//! `crates/compat/README.md`). For `rand` that is:
//!
//! - [`Rng`] with [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`],
//! - [`SeedableRng::seed_from_u64`],
//! - [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64.
//! It is deterministic for a given seed across platforms and releases, which
//! the test suite and the paper-table pipeline rely on. It is **not** the
//! same stream as upstream `StdRng` (ChaCha12) and makes no cryptographic
//! claims; for evolutionary search and synthetic workload generation only
//! statistical quality and reproducibility matter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform `u64`s.
///
/// Mirrors `rand_core::RngCore`, reduced to the single method everything
/// else in this stub derives from.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods over [`RngCore`].
///
/// Blanket-implemented for every [`RngCore`], exactly like upstream.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`bool`: fair coin; floats: uniform in `[0, 1)`; integers: uniform
    /// over the whole domain).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_uniform(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their standard distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: the low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, bound)` without modulo bias, by rejection
/// sampling on the widening multiply (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(bound);
        if wide as u64 >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded from a `u64` through SplitMix64 as recommended by the
    /// xoshiro authors, so nearby seeds produce unrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The generator's full internal state, for checkpointing. Feeding
        /// the returned words back through [`StdRng::from_state`] yields a
        /// generator that continues the exact same stream.
        pub fn to_state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state captured by [`StdRng::to_state`].
        /// The stream continues exactly where the captured generator stood.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

fn _rng_object_safety(_: &mut dyn RngCore) {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=2u8);
            assert!(w <= 2);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(13);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.to_state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ufcs_turbofish_call_works() {
        // The evo crate's doctest calls `rand::Rng::gen::<bool>(rng)`.
        let mut rng = StdRng::seed_from_u64(3);
        let _: bool = Rng::gen::<bool>(&mut rng);
    }
}
