//! Decode trees for prefix codes.

use crate::prefix::PrefixCode;

/// A binary decode tree: walk one edge per received bit, emit a symbol at a
/// leaf, restart at the root. This is the software model of the code part of
/// the on-chip decoder FSM.
///
/// # Example
///
/// ```
/// use evotc_codes::PrefixCode;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tree = PrefixCode::from_strs(&["0", "10", "11"])?.decode_tree();
/// assert_eq!(tree.decode_str("0110"), vec![0, 2, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Internal {
        zero: u32,
        one: u32,
    },
    Leaf {
        symbol: u32,
    },
    /// A branch no codeword reaches (incomplete codes only).
    Dead,
}

/// Result of feeding one bit into a [`DecodeTree`] walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// More bits needed.
    Pending,
    /// A full codeword was recognized; the walk has restarted at the root.
    Symbol(usize),
    /// The bit sequence matches no codeword (incomplete code).
    Invalid,
}

impl DecodeTree {
    /// Builds the tree for a prefix code.
    ///
    /// # Panics
    ///
    /// Panics if the code has a single symbol with an empty codeword — such a
    /// degenerate code transmits no bits and has no tree.
    pub fn from_code(code: &PrefixCode) -> Self {
        assert!(
            code.len() > 1 || !code.codeword(0).is_empty(),
            "degenerate single-symbol code with empty codeword has no decode tree"
        );
        let mut nodes = vec![Node::Dead];
        for (symbol, cw) in code.codewords().iter().enumerate() {
            let mut at = 0usize;
            for (i, bit) in cw.iter().enumerate() {
                let last = i + 1 == cw.len();
                // Ensure `at` is an internal node.
                let (zero, one) = match nodes[at] {
                    Node::Internal { zero, one } => (zero, one),
                    Node::Dead => {
                        let z = nodes.len() as u32;
                        nodes.push(Node::Dead);
                        let o = nodes.len() as u32;
                        nodes.push(Node::Dead);
                        nodes[at] = Node::Internal { zero: z, one: o };
                        (z, o)
                    }
                    Node::Leaf { .. } => unreachable!("prefix property violated"),
                };
                let child = if bit { one } else { zero } as usize;
                if last {
                    nodes[child] = Node::Leaf {
                        symbol: symbol as u32,
                    };
                } else {
                    at = child;
                }
            }
        }
        DecodeTree { nodes }
    }

    /// Number of nodes (root, internal, leaf, dead).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of internal (non-leaf, non-dead) nodes — the FSM state count of
    /// the code part of a hardware decoder.
    pub fn num_internal_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Internal { .. }))
            .count()
    }

    /// Starts a stateful walk at the root.
    pub fn walk(&self) -> Walk<'_> {
        Walk { tree: self, at: 0 }
    }

    /// Decodes a complete bit sequence into symbols.
    ///
    /// Returns `None` if the stream ends mid-codeword or hits a dead branch.
    pub fn decode<I: IntoIterator<Item = bool>>(&self, bits: I) -> Option<Vec<usize>> {
        let mut out = Vec::new();
        let mut walk = self.walk();
        for bit in bits {
            match walk.step(bit) {
                Step::Pending => {}
                Step::Symbol(s) => out.push(s),
                Step::Invalid => return None,
            }
        }
        walk.at_root().then_some(out)
    }

    /// Decodes a `0`/`1` string (convenience for tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if the string contains non-binary characters or does not decode
    /// cleanly.
    pub fn decode_str(&self, s: &str) -> Vec<usize> {
        self.decode(s.chars().map(|c| match c {
            '0' => false,
            '1' => true,
            other => panic!("invalid bit character {other}"),
        }))
        .expect("string does not decode cleanly")
    }
}

/// A stateful decode walk; feed bits with [`Walk::step`].
#[derive(Debug, Clone)]
pub struct Walk<'a> {
    tree: &'a DecodeTree,
    at: usize,
}

impl Walk<'_> {
    /// Consumes one bit.
    pub fn step(&mut self, bit: bool) -> Step {
        match self.tree.nodes[self.at] {
            Node::Internal { zero, one } => {
                let child = if bit { one } else { zero } as usize;
                match self.tree.nodes[child] {
                    Node::Leaf { symbol } => {
                        self.at = 0;
                        Step::Symbol(symbol as usize)
                    }
                    Node::Dead => {
                        self.at = 0;
                        Step::Invalid
                    }
                    Node::Internal { .. } => {
                        self.at = child;
                        Step::Pending
                    }
                }
            }
            // Root is Dead only for codes that never got any codeword —
            // impossible by construction — or we are mid-reset.
            _ => Step::Invalid,
        }
    }

    /// Returns `true` if the walk is at the root (codeword boundary).
    pub fn at_root(&self) -> bool {
        self.at == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::PrefixCode;

    fn tree(words: &[&str]) -> DecodeTree {
        PrefixCode::from_strs(words).unwrap().decode_tree()
    }

    #[test]
    fn decodes_simple_sequences() {
        let t = tree(&["0", "10", "11"]);
        assert_eq!(t.decode_str("0"), vec![0]);
        assert_eq!(t.decode_str("10"), vec![1]);
        assert_eq!(t.decode_str("1011010"), vec![1, 2, 0, 1]);
    }

    #[test]
    fn rejects_truncated_stream() {
        let t = tree(&["0", "10", "11"]);
        assert_eq!(t.decode([true].into_iter()), None);
    }

    #[test]
    fn rejects_dead_branch_of_incomplete_code() {
        let t = tree(&["00", "01"]);
        // '1…' hits a dead branch
        assert_eq!(t.decode([true, false].into_iter()), None);
        assert_eq!(t.decode_str("0001"), vec![0, 1]);
    }

    #[test]
    fn stateful_walk_reports_boundaries() {
        let t = tree(&["0", "10", "11"]);
        let mut w = t.walk();
        assert_eq!(w.step(true), Step::Pending);
        assert!(!w.at_root());
        assert_eq!(w.step(false), Step::Symbol(1));
        assert!(w.at_root());
    }

    #[test]
    fn paper_9c_code_decodes() {
        let t = tree(&[
            "0", "10", "11000", "11001", "11010", "11011", "11100", "11101", "1111",
        ]);
        // C(v1)=0, C(v2)=10, C(v9)=1111 (paper, Section 4)
        assert_eq!(t.decode_str("0101111"), vec![0, 1, 8]);
    }

    #[test]
    fn node_counts_for_known_tree() {
        // code {0,10,11}: root + leaf(0) + internal(1) + leaf(10) + leaf(11)
        let t = tree(&["0", "10", "11"]);
        assert_eq!(t.num_internal_nodes(), 2); // root and node "1"
        assert_eq!(t.num_nodes(), 5);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_code_has_no_tree() {
        let code = PrefixCode::from_strs(&[""]).unwrap();
        let _ = code.decode_tree();
    }
}
