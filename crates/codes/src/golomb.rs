//! Golomb coding of zero-runs (Chandra/Chakrabarty, the paper's
//! reference \[3\]).
//!
//! Runs of `0`s terminated by a `1` are encoded with group size `m` (a power
//! of two): a run of length `r` is split as `r = q·m + s`; the quotient `q`
//! is sent unary (`q` ones and a `0`... following the original paper we use
//! `1^q 0` as the prefix), the remainder `s` as a `log2(m)`-bit tail.

use std::fmt;

/// Encodes zero-runs of `bits` with Golomb group size `m`.
///
/// The input is interpreted as a sequence of runs `0^r 1`; a trailing run
/// without a terminating `1` is encoded as if terminated, and decoders trim
/// to the payload length.
///
/// # Panics
///
/// Panics if `m` is not a power of two or is zero.
///
/// # Example
///
/// ```
/// use evotc_codes::golomb;
///
/// let data = [false, false, false, false, true]; // run of 4, m=4 -> "0" ++ "00"...
/// let enc = golomb::encode(&data, 4);
/// assert_eq!(golomb::decode_to_len(&enc, 4, data.len()), data);
/// ```
pub fn encode(bits: &[bool], m: usize) -> Vec<bool> {
    assert!(
        m.is_power_of_two() && m > 0,
        "group size must be a power of two"
    );
    let tail_bits = m.trailing_zeros() as usize;
    let mut out = Vec::new();
    let mut run = 0usize;
    let emit = |out: &mut Vec<bool>, r: usize| {
        let q = r / m;
        let s = r % m;
        for _ in 0..q {
            out.push(true);
        }
        out.push(false);
        for i in (0..tail_bits).rev() {
            out.push((s >> i) & 1 == 1);
        }
    };
    for &bit in bits {
        if bit {
            emit(&mut out, run);
            run = 0;
        } else {
            run += 1;
        }
    }
    if run > 0 {
        emit(&mut out, run);
    }
    out
}

/// Decodes a Golomb stream; the result may carry one synthetic trailing `1`.
///
/// # Panics
///
/// Panics if `m` is not a power of two, or the stream is malformed
/// (truncated tail).
pub fn decode(enc: &[bool], m: usize) -> Vec<bool> {
    assert!(
        m.is_power_of_two() && m > 0,
        "group size must be a power of two"
    );
    let tail_bits = m.trailing_zeros() as usize;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < enc.len() {
        let mut q = 0usize;
        while i < enc.len() && enc[i] {
            q += 1;
            i += 1;
        }
        assert!(i < enc.len(), "truncated golomb prefix");
        i += 1; // the 0 terminating the unary prefix
        assert!(i + tail_bits <= enc.len(), "truncated golomb tail");
        let mut s = 0usize;
        for _ in 0..tail_bits {
            s = (s << 1) | usize::from(enc[i]);
            i += 1;
        }
        let r = q * m + s;
        out.extend(std::iter::repeat(false).take(r));
        out.push(true);
    }
    out
}

/// Decodes and truncates to a known payload length.
///
/// # Panics
///
/// Panics if the decoded stream is shorter than `len` or longer than
/// `len + 1`.
pub fn decode_to_len(enc: &[bool], m: usize, len: usize) -> Vec<bool> {
    let mut out = decode(enc, m);
    assert!(
        out.len() >= len && out.len() <= len + 1,
        "decoded {} bits, expected {len}",
        out.len()
    );
    out.truncate(len);
    out
}

/// Report describing a Golomb compression outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GolombReport {
    /// Group size `m`.
    pub group_size: usize,
    /// Original size in bits.
    pub original_bits: usize,
    /// Encoded size in bits.
    pub encoded_bits: usize,
}

impl GolombReport {
    /// Compression rate `100·(orig − enc)/orig` (may be negative).
    pub fn rate_percent(&self) -> f64 {
        if self.original_bits == 0 {
            return 0.0;
        }
        100.0 * (self.original_bits as f64 - self.encoded_bits as f64) / self.original_bits as f64
    }
}

impl fmt::Display for GolombReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "golomb(m={}): {} -> {} bits ({:.1}%)",
            self.group_size,
            self.original_bits,
            self.encoded_bits,
            self.rate_percent()
        )
    }
}

/// Compresses and reports in one call.
pub fn compress(bits: &[bool], m: usize) -> GolombReport {
    GolombReport {
        group_size: m,
        original_bits: bits.len(),
        encoded_bits: encode(bits, m).len(),
    }
}

/// Picks the best power-of-two group size in `2..=max_m` for the data.
pub fn best_group_size(bits: &[bool], max_m: usize) -> usize {
    let mut best = (usize::MAX, 2usize);
    let mut m = 2usize;
    while m <= max_m {
        let len = encode(bits, m).len();
        if len < best.0 {
            best = (len, m);
        }
        m *= 2;
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(bits: &[bool], m: usize) {
        let enc = encode(bits, m);
        assert_eq!(decode_to_len(&enc, m, bits.len()), bits);
    }

    #[test]
    fn known_encoding_m4() {
        // Golomb m=4: run r=5 -> q=1,s=1 -> "10" ++ "01"
        let mut bits = vec![false; 5];
        bits.push(true);
        let enc = encode(&bits, 4);
        let s: String = enc.iter().map(|&b| if b { '1' } else { '0' }).collect();
        assert_eq!(s, "1001");
    }

    #[test]
    fn round_trips() {
        round_trip(&[true, true, true], 2);
        round_trip(&[false; 17], 4);
        let mixed: Vec<bool> = (0..100).map(|i| i % 7 == 0).collect();
        round_trip(&mixed, 4);
        round_trip(&mixed, 8);
    }

    #[test]
    fn zero_run_encodes_prefix_only() {
        // run of 0 before a 1: "0" ++ tail zeros
        let enc = encode(&[true], 2);
        let s: String = enc.iter().map(|&b| if b { '1' } else { '0' }).collect();
        assert_eq!(s, "00");
    }

    #[test]
    fn long_runs_compress_well() {
        let mut bits = Vec::new();
        for _ in 0..16 {
            bits.extend(std::iter::repeat(false).take(63));
            bits.push(true);
        }
        let r = compress(&bits, 32);
        assert!(r.rate_percent() > 80.0, "{r}");
    }

    #[test]
    fn best_group_size_tracks_run_length() {
        let mut short_runs = Vec::new();
        for _ in 0..64 {
            short_runs.extend([false, false, true]);
        }
        let mut long_runs = Vec::new();
        for _ in 0..8 {
            long_runs.extend(std::iter::repeat(false).take(100));
            long_runs.push(true);
        }
        assert!(best_group_size(&short_runs, 64) <= 4);
        assert!(best_group_size(&long_runs, 64) >= 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = encode(&[true], 3);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn rejects_truncated_stream() {
        let _ = decode(&[true], 4);
    }
}
