//! Frequency-directed run-length (FDR) coding (Chandra/Chakrabarty, the
//! paper's reference \[4\]).
//!
//! FDR organizes zero-run lengths into groups `A_1, A_2, …` of sizes `2, 4,
//! 8, …`. A run in group `A_k` is encoded as a `k`-bit group prefix (`1^{k-1}
//! 0`) followed by a `k`-bit tail indexing the run within the group, so the
//! codeword length grows only logarithmically with the run length —
//! efficient exactly when short runs are frequent and long runs are rare,
//! the typical distribution of scan test data.

use std::fmt;

/// Group index (1-based) and offset of a run length.
///
/// Group `A_k` covers run lengths `2^k - 2 ..= 2^(k+1) - 3`.
fn group_of(run: u64) -> (usize, u64) {
    // smallest k with run <= 2^(k+1) - 3
    let mut k = 1usize;
    let mut base = 0u64; // first run length of group k = 2^k - 2
    loop {
        let size = 1u64 << k;
        if run < base + size {
            return (k, run - base);
        }
        base += size;
        k += 1;
    }
}

/// First run length covered by group `k`.
fn group_base(k: usize) -> u64 {
    (1u64 << k) - 2
}

/// Encodes zero-runs of `bits` with the FDR code.
///
/// A trailing run without a terminating `1` is encoded as if terminated;
/// decoders trim to the payload length.
///
/// # Example
///
/// ```
/// use evotc_codes::fdr;
///
/// let data = [false, false, true, true, false, true];
/// let enc = fdr::encode(&data);
/// assert_eq!(fdr::decode_to_len(&enc, data.len()), data);
/// ```
pub fn encode(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::new();
    let mut run = 0u64;
    let emit = |out: &mut Vec<bool>, r: u64| {
        let (k, offset) = group_of(r);
        for _ in 0..k - 1 {
            out.push(true);
        }
        out.push(false);
        for i in (0..k).rev() {
            out.push((offset >> i) & 1 == 1);
        }
    };
    for &bit in bits {
        if bit {
            emit(&mut out, run);
            run = 0;
        } else {
            run += 1;
        }
    }
    if run > 0 {
        emit(&mut out, run);
    }
    out
}

/// Decodes an FDR stream; the result may carry one synthetic trailing `1`.
///
/// # Panics
///
/// Panics if the stream is malformed (truncated prefix or tail).
pub fn decode(enc: &[bool]) -> Vec<bool> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < enc.len() {
        let mut k = 1usize;
        while i < enc.len() && enc[i] {
            k += 1;
            i += 1;
        }
        assert!(i < enc.len(), "truncated fdr prefix");
        i += 1;
        assert!(i + k <= enc.len(), "truncated fdr tail");
        let mut offset = 0u64;
        for _ in 0..k {
            offset = (offset << 1) | u64::from(enc[i]);
            i += 1;
        }
        let run = group_base(k) + offset;
        out.extend(std::iter::repeat(false).take(run as usize));
        out.push(true);
    }
    out
}

/// Decodes and truncates to a known payload length.
///
/// # Panics
///
/// Panics if the decoded stream is shorter than `len` or longer than
/// `len + 1`.
pub fn decode_to_len(enc: &[bool], len: usize) -> Vec<bool> {
    let mut out = decode(enc);
    assert!(
        out.len() >= len && out.len() <= len + 1,
        "decoded {} bits, expected {len}",
        out.len()
    );
    out.truncate(len);
    out
}

/// Report describing an FDR compression outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdrReport {
    /// Original size in bits.
    pub original_bits: usize,
    /// Encoded size in bits.
    pub encoded_bits: usize,
}

impl FdrReport {
    /// Compression rate `100·(orig − enc)/orig` (may be negative).
    pub fn rate_percent(&self) -> f64 {
        if self.original_bits == 0 {
            return 0.0;
        }
        100.0 * (self.original_bits as f64 - self.encoded_bits as f64) / self.original_bits as f64
    }
}

impl fmt::Display for FdrReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fdr: {} -> {} bits ({:.1}%)",
            self.original_bits,
            self.encoded_bits,
            self.rate_percent()
        )
    }
}

/// Compresses and reports in one call.
pub fn compress(bits: &[bool]) -> FdrReport {
    FdrReport {
        original_bits: bits.len(),
        encoded_bits: encode(bits).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_boundaries() {
        // A1 = {0, 1}, A2 = {2..5}, A3 = {6..13}
        assert_eq!(group_of(0), (1, 0));
        assert_eq!(group_of(1), (1, 1));
        assert_eq!(group_of(2), (2, 0));
        assert_eq!(group_of(5), (2, 3));
        assert_eq!(group_of(6), (3, 0));
        assert_eq!(group_of(13), (3, 7));
        assert_eq!(group_of(14), (4, 0));
    }

    #[test]
    fn codeword_lengths_are_2k() {
        // run 0 -> k=1 -> 2 bits; run 6 -> k=3 -> 6 bits
        assert_eq!(encode(&[true]).len(), 2);
        let mut bits = vec![false; 6];
        bits.push(true);
        assert_eq!(encode(&bits).len(), 6);
    }

    fn round_trip(bits: &[bool]) {
        let enc = encode(bits);
        assert_eq!(decode_to_len(&enc, bits.len()), bits);
    }

    #[test]
    fn round_trips() {
        round_trip(&[true]);
        round_trip(&[false; 40]);
        let mixed: Vec<bool> = (0..257).map(|i| i % 11 == 0).collect();
        round_trip(&mixed);
    }

    #[test]
    fn long_runs_cost_logarithmic_bits() {
        let mut bits = vec![false; 1000];
        bits.push(true);
        let enc = encode(&bits);
        assert!(enc.len() <= 20, "1000-run took {} bits", enc.len());
    }

    #[test]
    fn skewed_data_compresses() {
        let mut bits = Vec::new();
        for i in 0..64 {
            bits.extend(std::iter::repeat(false).take(10 + (i % 5)));
            bits.push(true);
        }
        let r = compress(&bits);
        assert!(r.rate_percent() > 30.0, "{r}");
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn rejects_truncated() {
        let _ = decode(&[true, false, true]); // k=2 needs 2 tail bits, has 1
    }
}
