//! Selective Huffman coding of fixed-length blocks (Jas/Ghosh-Dastidar/
//! Touba, the paper's reference \[2\]).
//!
//! The test-set string is split into fixed `b`-bit blocks; the `n` most
//! frequent distinct blocks are Huffman-coded behind a `1` flag bit, all
//! other blocks are sent raw behind a `0` flag bit. Only the frequent blocks
//! need decoder storage, which bounds hardware cost.

use std::collections::HashMap;
use std::fmt;

use crate::huffman::huffman_code;

/// Outcome of selective Huffman compression.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectiveReport {
    /// Block width `b`.
    pub block_bits: usize,
    /// Number of dictionary (Huffman-coded) blocks.
    pub dictionary_size: usize,
    /// Original size in bits (after padding to whole blocks).
    pub original_bits: usize,
    /// Encoded size in bits.
    pub encoded_bits: usize,
    /// How many blocks were served from the dictionary.
    pub coded_blocks: u64,
    /// How many blocks were sent raw.
    pub raw_blocks: u64,
}

impl SelectiveReport {
    /// Compression rate `100·(orig − enc)/orig` (may be negative).
    pub fn rate_percent(&self) -> f64 {
        if self.original_bits == 0 {
            return 0.0;
        }
        100.0 * (self.original_bits as f64 - self.encoded_bits as f64) / self.original_bits as f64
    }
}

impl fmt::Display for SelectiveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "selective-huffman(b={}, n={}): {} -> {} bits ({:.1}%)",
            self.block_bits,
            self.dictionary_size,
            self.original_bits,
            self.encoded_bits,
            self.rate_percent()
        )
    }
}

/// Compresses `bits` with selective Huffman coding over `b`-bit blocks and a
/// dictionary of the `n` most frequent blocks.
///
/// The input is zero-padded to a whole number of blocks (callers fill
/// don't-cares before invoking; zero-fill maximizes block repetition).
///
/// # Panics
///
/// Panics if `b` is `0` or greater than 32, or `n` is `0`.
///
/// # Example
///
/// ```
/// use evotc_codes::selective;
///
/// let bits = vec![false; 64];
/// let report = selective::compress(&bits, 8, 4);
/// assert!(report.rate_percent() > 50.0);
/// ```
pub fn compress(bits: &[bool], b: usize, n: usize) -> SelectiveReport {
    assert!(b > 0 && b <= 32, "block width must be in 1..=32");
    assert!(n > 0, "dictionary must hold at least one block");
    let padded_len = bits.len().div_ceil(b) * b;
    let mut blocks: Vec<u32> = Vec::with_capacity(padded_len / b);
    let mut i = 0usize;
    while i < padded_len {
        let mut v = 0u32;
        for j in 0..b {
            let bit = bits.get(i + j).copied().unwrap_or(false);
            v = (v << 1) | u32::from(bit);
        }
        blocks.push(v);
        i += b;
    }

    let mut freq: HashMap<u32, u64> = HashMap::new();
    for &blk in &blocks {
        *freq.entry(blk).or_insert(0) += 1;
    }
    let mut by_freq: Vec<(u32, u64)> = freq.into_iter().collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let dict: Vec<(u32, u64)> = by_freq.into_iter().take(n).collect();
    let index: HashMap<u32, usize> = dict
        .iter()
        .enumerate()
        .map(|(i, &(blk, _))| (blk, i))
        .collect();

    let freqs: Vec<u64> = dict.iter().map(|&(_, f)| f).collect();
    let code = huffman_code(&freqs);

    let mut encoded_bits = 0usize;
    let mut coded = 0u64;
    let mut raw = 0u64;
    for &blk in &blocks {
        match index.get(&blk) {
            Some(&sym) => {
                encoded_bits += 1 + code.codeword(sym).len();
                coded += 1;
            }
            None => {
                encoded_bits += 1 + b;
                raw += 1;
            }
        }
    }

    SelectiveReport {
        block_bits: b,
        dictionary_size: dict.len(),
        original_bits: padded_len,
        encoded_bits,
        coded_blocks: coded,
        raw_blocks: raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_stream_compresses_hard() {
        let bits = vec![false; 256];
        let r = compress(&bits, 8, 4);
        assert_eq!(r.raw_blocks, 0);
        // 32 blocks, all identical: 1 flag + 1 codeword bit each = 64 bits
        assert_eq!(r.encoded_bits, 64);
        assert!(r.rate_percent() > 70.0);
    }

    #[test]
    fn unique_blocks_expand_by_flag_bit() {
        // 16 distinct 4-bit blocks, dictionary of 1: 15 raw blocks
        let mut bits = Vec::new();
        for v in 0..16u32 {
            for i in (0..4).rev() {
                bits.push((v >> i) & 1 == 1);
            }
        }
        let r = compress(&bits, 4, 1);
        assert_eq!(r.coded_blocks, 1);
        assert_eq!(r.raw_blocks, 15);
        assert!(r.rate_percent() < 0.0);
    }

    #[test]
    fn bigger_dictionary_never_hurts_much() {
        let bits: Vec<bool> = (0..512).map(|i| (i / 3) % 5 == 0).collect();
        let r4 = compress(&bits, 8, 4);
        let r16 = compress(&bits, 8, 16);
        // More dictionary entries → at least as many coded blocks.
        assert!(r16.coded_blocks >= r4.coded_blocks);
    }

    #[test]
    fn padding_counts_in_original_size() {
        let bits = vec![true; 10];
        let r = compress(&bits, 8, 2);
        assert_eq!(r.original_bits, 16);
    }

    #[test]
    #[should_panic(expected = "block width")]
    fn rejects_bad_width() {
        let _ = compress(&[true], 0, 1);
    }

    #[test]
    #[should_panic(expected = "dictionary")]
    fn rejects_empty_dictionary() {
        let _ = compress(&[true], 4, 0);
    }
}
