//! Validated prefix codes.

use std::fmt;

use crate::codeword::Codeword;
use crate::decode::DecodeTree;

/// A prefix code over symbols `0..L`: no codeword is a prefix of another
/// (paper, Section 2, requirement on `{C(v⁽¹⁾), …, C(v⁽ᴸ⁾)}`).
///
/// # Example
///
/// ```
/// use evotc_codes::PrefixCode;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = PrefixCode::from_strs(&["0", "10", "11"])?;
/// assert!(code.kraft_sum_is_one());
/// assert_eq!(code.decode_tree().decode_str("10011"), vec![1, 0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixCode {
    codewords: Vec<Codeword>,
}

impl PrefixCode {
    /// Builds a prefix code from per-symbol codewords.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPrefixCodeError`] if the code is empty, contains an
    /// empty codeword alongside others, duplicates a codeword, or violates
    /// the prefix property.
    pub fn new(codewords: Vec<Codeword>) -> Result<Self, BuildPrefixCodeError> {
        if codewords.is_empty() {
            return Err(BuildPrefixCodeError::Empty);
        }
        if codewords.len() > 1 {
            for (i, a) in codewords.iter().enumerate() {
                if a.is_empty() {
                    return Err(BuildPrefixCodeError::EmptyCodeword { symbol: i });
                }
                for (j, b) in codewords.iter().enumerate() {
                    if i != j && a.is_prefix_of(b) {
                        return Err(BuildPrefixCodeError::PrefixViolation {
                            prefix_symbol: i,
                            extended_symbol: j,
                        });
                    }
                }
            }
        }
        Ok(PrefixCode { codewords })
    }

    /// Crate-internal constructor for canonical codes whose *unused* symbols
    /// carry empty codewords. The used subset must already be prefix-free;
    /// encoding an unused symbol is a logic error on the caller's side.
    pub(crate) fn new_unchecked(codewords: Vec<Codeword>) -> Self {
        PrefixCode { codewords }
    }

    /// Convenience constructor from `0`/`1` strings.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPrefixCodeError`] as for [`PrefixCode::new`]; codeword
    /// parse failures are reported as [`BuildPrefixCodeError::BadCodeword`].
    pub fn from_strs<S: AsRef<str>>(strs: &[S]) -> Result<Self, BuildPrefixCodeError> {
        let codewords = strs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.as_ref()
                    .parse::<Codeword>()
                    .map_err(|_| BuildPrefixCodeError::BadCodeword { symbol: i })
            })
            .collect::<Result<Vec<_>, _>>()?;
        PrefixCode::new(codewords)
    }

    /// Number of symbols `L`.
    #[inline]
    pub fn len(&self) -> usize {
        self.codewords.len()
    }

    /// Returns `true` if the code has no symbols (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codewords.is_empty()
    }

    /// The codeword of `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= self.len()`.
    #[inline]
    pub fn codeword(&self, symbol: usize) -> Codeword {
        self.codewords[symbol]
    }

    /// All codewords, indexed by symbol.
    #[inline]
    pub fn codewords(&self) -> &[Codeword] {
        &self.codewords
    }

    /// Sum of `2^{-len(c)}` over all codewords.
    ///
    /// By the Kraft inequality this is `≤ 1` for any prefix code and exactly
    /// `1` for a *complete* code (every bit sequence decodes); Huffman codes
    /// are complete.
    pub fn kraft_sum(&self) -> f64 {
        self.codewords
            .iter()
            .map(|c| 2f64.powi(-(c.len() as i32)))
            .sum()
    }

    /// Returns `true` if the code is complete (Kraft sum exactly one,
    /// computed exactly in fixed point, not floating point).
    pub fn kraft_sum_is_one(&self) -> bool {
        // Sum 2^(64 - len) in u128 and compare with 2^64.
        let target: u128 = 1u128 << 64;
        let sum: u128 = self.codewords.iter().map(|c| 1u128 << (64 - c.len())).sum();
        sum == target
    }

    /// Total encoded length, in bits, of a message where symbol `i` occurs
    /// `freqs[i]` times.
    ///
    /// # Panics
    ///
    /// Panics if `freqs.len() != self.len()`.
    pub fn weighted_length(&self, freqs: &[u64]) -> u64 {
        assert_eq!(freqs.len(), self.len(), "frequency table size mismatch");
        self.codewords
            .iter()
            .zip(freqs)
            .map(|(c, &f)| c.len() as u64 * f)
            .sum()
    }

    /// Builds the decode tree for this code.
    pub fn decode_tree(&self) -> DecodeTree {
        DecodeTree::from_code(self)
    }

    /// The length of the longest codeword.
    pub fn max_len(&self) -> usize {
        self.codewords.iter().map(Codeword::len).max().unwrap_or(0)
    }
}

impl fmt::Display for PrefixCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.codewords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}:{c}")?;
        }
        Ok(())
    }
}

/// Error building a [`PrefixCode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildPrefixCodeError {
    /// No codewords supplied.
    Empty,
    /// An empty codeword in a multi-symbol code.
    EmptyCodeword {
        /// Symbol with the empty codeword.
        symbol: usize,
    },
    /// One codeword is a prefix of another (includes duplicates).
    PrefixViolation {
        /// Symbol whose codeword is the prefix.
        prefix_symbol: usize,
        /// Symbol whose codeword extends it.
        extended_symbol: usize,
    },
    /// A codeword string failed to parse.
    BadCodeword {
        /// Symbol with the malformed codeword.
        symbol: usize,
    },
}

impl fmt::Display for BuildPrefixCodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPrefixCodeError::Empty => write!(f, "prefix code must have at least one symbol"),
            BuildPrefixCodeError::EmptyCodeword { symbol } => {
                write!(f, "symbol {symbol} has an empty codeword in a multi-symbol code")
            }
            BuildPrefixCodeError::PrefixViolation {
                prefix_symbol,
                extended_symbol,
            } => write!(
                f,
                "codeword of symbol {prefix_symbol} is a prefix of the codeword of symbol {extended_symbol}"
            ),
            BuildPrefixCodeError::BadCodeword { symbol } => {
                write!(f, "codeword of symbol {symbol} is not a binary string")
            }
        }
    }
}

impl std::error::Error for BuildPrefixCodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_code() {
        let code = PrefixCode::from_strs(&["0", "10", "110", "111"]).unwrap();
        assert_eq!(code.len(), 4);
        assert!(code.kraft_sum_is_one());
        assert_eq!(code.max_len(), 3);
    }

    #[test]
    fn rejects_prefix_violation() {
        let err = PrefixCode::from_strs(&["1", "10"]).unwrap_err();
        assert!(matches!(
            err,
            BuildPrefixCodeError::PrefixViolation {
                prefix_symbol: 0,
                extended_symbol: 1
            }
        ));
    }

    #[test]
    fn rejects_duplicates() {
        // identical codewords are mutual prefixes
        assert!(PrefixCode::from_strs(&["10", "10"]).is_err());
    }

    #[test]
    fn rejects_empty_code_and_empty_codeword() {
        assert!(matches!(
            PrefixCode::from_strs::<&str>(&[]),
            Err(BuildPrefixCodeError::Empty)
        ));
        assert!(matches!(
            PrefixCode::from_strs(&["", "1"]),
            Err(BuildPrefixCodeError::EmptyCodeword { symbol: 0 })
        ));
    }

    #[test]
    fn singleton_code_may_be_empty_codeword() {
        let code = PrefixCode::from_strs(&[""]).unwrap();
        assert_eq!(code.len(), 1);
        assert_eq!(code.codeword(0).len(), 0);
    }

    #[test]
    fn incomplete_code_kraft_below_one() {
        let code = PrefixCode::from_strs(&["00", "01"]).unwrap();
        assert!(!code.kraft_sum_is_one());
        assert!((code.kraft_sum() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_length_counts_bits() {
        let code = PrefixCode::from_strs(&["0", "10", "11"]).unwrap();
        assert_eq!(code.weighted_length(&[5, 3, 2]), 5 + 6 + 4);
    }

    #[test]
    fn paper_9c_codeword_table_is_a_prefix_code() {
        // The fixed 9C encoding from the paper, Section 4.
        let code = PrefixCode::from_strs(&[
            "0", "10", "11000", "11001", "11010", "11011", "11100", "11101", "1111",
        ])
        .unwrap();
        assert!(code.kraft_sum_is_one());
    }
}
