//! Closed-form decoder-area model.
//!
//! The on-chip decoder of a code-based scheme is a prefix-code FSM walking
//! the encoded stream, an MV table holding the used symbols, a fill counter
//! and an output shift register. Its first-order area is a pure function of
//! the block length `K`, the number of *used* symbols (those with a
//! codeword) and the FSM state count — which for the optimal (Huffman)
//! codes the EA emits is itself determined by the used-symbol count.
//!
//! This module hosts that arithmetic so two consumers cannot drift apart:
//! `evotc_decoder::HardwareCost` feeds it the state count of a *real*
//! decode tree (valid for arbitrary prefix codes), while the fitness kernel
//! in `evotc_core` — which never materializes codewords — uses
//! [`huffman_fsm_states`] to price the decoder-area objective of a genome
//! from its used-MV count alone.

/// First-order decoder area, broken down the way a synthesis report would
/// be. Produced by [`decoder_area`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderArea {
    /// FSM states of the code walker.
    pub fsm_states: usize,
    /// Bits of MV table storage (two bits per position: `0`, `1` or `U`).
    pub table_bits: usize,
    /// State/counter/shift flip-flops.
    pub flip_flops: usize,
    /// Gate-equivalent estimate (4 NAND per flip-flop, 1 per table bit, 2
    /// per FSM state).
    pub gate_equivalents: usize,
}

/// FSM state count of the decode tree of an *optimal* prefix code over
/// `used_symbols` leaves: a Huffman tree over `n ≥ 2` leaves is a full
/// binary tree with exactly `n − 1` internal nodes; a single used symbol is
/// clamped to a one-bit codeword (the stream must stay self-delimiting), so
/// its tree has one internal node — the root; no symbols, no tree.
///
/// `evotc_decoder` asserts this closed form against the node count of the
/// real [`DecodeTree`](crate::DecodeTree) for Huffman codes.
pub fn huffman_fsm_states(used_symbols: usize) -> usize {
    match used_symbols {
        0 | 1 => used_symbols,
        n => n - 1,
    }
}

/// The shared area arithmetic: MV table of `used_symbols · block_len · 2`
/// bits, `⌈log₂(fsm_states + 1)⌉` state bits, a `⌈log₂(block_len + 1)⌉`-bit
/// fill counter, a `block_len`-bit shift register, and the classic
/// 4-NAND-per-flip-flop / 1-NAND-per-table-bit gate rule of thumb. Coarse,
/// but it ranks decoder configurations the same way a synthesis run would.
pub fn decoder_area(block_len: usize, used_symbols: usize, fsm_states: usize) -> DecoderArea {
    let table_bits = used_symbols * block_len * 2;
    let state_bits = usize::BITS as usize - fsm_states.leading_zeros() as usize;
    let counter_bits = usize::BITS as usize - block_len.leading_zeros() as usize;
    let flip_flops = state_bits + counter_bits + block_len;
    let gate_equivalents = flip_flops * 4 + table_bits + fsm_states * 2;
    DecoderArea {
        fsm_states,
        table_bits,
        flip_flops,
        gate_equivalents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huffman_state_counts_match_the_real_trees() {
        // n used symbols -> Huffman tree with n - 1 internal nodes (n >= 2);
        // the degenerate single-symbol code clamps to "0" whose tree is one
        // internal root.
        for used in 1..12usize {
            let freqs: Vec<u64> = (1..=used as u64).map(|f| f * f + 1).collect();
            let code = crate::huffman_code(&freqs);
            assert_eq!(
                code.decode_tree().num_internal_nodes(),
                huffman_fsm_states(used),
                "used = {used}"
            );
        }
        assert_eq!(huffman_fsm_states(0), 0);
    }

    #[test]
    fn area_grows_with_table_and_block_size() {
        let small = decoder_area(8, 4, huffman_fsm_states(4));
        let wider = decoder_area(8, 9, huffman_fsm_states(9));
        let longer = decoder_area(16, 4, huffman_fsm_states(4));
        assert!(wider.gate_equivalents > small.gate_equivalents);
        assert!(longer.gate_equivalents > small.gate_equivalents);
        assert_eq!(small.table_bits, 4 * 8 * 2);
    }

    #[test]
    fn no_symbols_means_no_table_or_states() {
        let empty = decoder_area(12, 0, huffman_fsm_states(0));
        assert_eq!(empty.fsm_states, 0);
        assert_eq!(empty.table_bits, 0);
        // The counter and shift register remain — they are sized by K.
        assert!(empty.flip_flops > 0);
    }
}
