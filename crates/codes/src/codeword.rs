//! Binary codewords.

use std::fmt;
use std::str::FromStr;

/// An immutable binary codeword of up to 64 bits.
///
/// Codewords are compared structurally (length and bits); the empty codeword
/// is permitted only for degenerate single-symbol codes, where zero bits
/// suffice to identify the only symbol.
///
/// # Example
///
/// ```
/// use evotc_codes::Codeword;
///
/// let c: Codeword = "110".parse().unwrap();
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.bit(0), true);
/// assert_eq!(c.bit(2), false);
/// assert!(c.is_prefix_of(&"1101".parse().unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Codeword {
    len: u8,
    /// Bits left-aligned at bit `len-1` … 0; bit 0 of the codeword is the
    /// most significant stored bit.
    bits: u64,
}

impl Codeword {
    /// Maximum codeword length in bits.
    pub const MAX_LEN: usize = 64;

    /// The empty codeword.
    pub fn empty() -> Self {
        Codeword::default()
    }

    /// Creates a codeword from the `len` low bits of `bits`; bit `len-1` of
    /// `bits` becomes the first (leftmost) bit of the codeword.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_bits(bits: u64, len: usize) -> Self {
        assert!(len <= Self::MAX_LEN, "codeword length {len} exceeds 64");
        let mask = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        Codeword {
            len: len as u8,
            bits: bits & mask,
        }
    }

    /// Length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` for the empty codeword.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw bits, right-aligned (first codeword bit is the most
    /// significant of the `len` low bits).
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Reads bit `i` (0 = first / leftmost transmitted bit).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of range {}", self.len);
        (self.bits >> (self.len() - 1 - i)) & 1 == 1
    }

    /// Appends a bit, returning the extended codeword.
    ///
    /// # Panics
    ///
    /// Panics if the codeword is already [`Codeword::MAX_LEN`] bits long.
    pub fn push(&self, bit: bool) -> Codeword {
        assert!(self.len() < Self::MAX_LEN, "codeword full");
        Codeword {
            len: self.len + 1,
            bits: (self.bits << 1) | u64::from(bit),
        }
    }

    /// Returns `true` if `self` is a (proper or improper) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Codeword) -> bool {
        if self.len > other.len {
            return false;
        }
        let shift = other.len() - self.len();
        (other.bits >> shift) == self.bits
    }

    /// Iterates over the bits, first transmitted bit first.
    pub fn iter(&self) -> Iter {
        Iter { cw: *self, pos: 0 }
    }
}

impl FromStr for Codeword {
    type Err = ParseCodewordError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() > Self::MAX_LEN {
            return Err(ParseCodewordError::TooLong { len: s.len() });
        }
        let mut cw = Codeword::empty();
        for c in s.chars() {
            match c {
                '0' => cw = cw.push(false),
                '1' => cw = cw.push(true),
                other => return Err(ParseCodewordError::BadChar { found: other }),
            }
        }
        Ok(cw)
    }
}

impl fmt::Display for Codeword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

/// Iterator over the bits of a [`Codeword`].
#[derive(Debug, Clone)]
pub struct Iter {
    cw: Codeword,
    pos: usize,
}

impl Iterator for Iter {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.pos < self.cw.len() {
            let b = self.cw.bit(self.pos);
            self.pos += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.cw.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

/// Error parsing a [`Codeword`] from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseCodewordError {
    /// A character other than `0`/`1`.
    BadChar {
        /// The offending character.
        found: char,
    },
    /// More than [`Codeword::MAX_LEN`] bits.
    TooLong {
        /// The offending length.
        len: usize,
    },
}

impl fmt::Display for ParseCodewordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCodewordError::BadChar { found } => {
                write!(f, "invalid codeword character `{found}`")
            }
            ParseCodewordError::TooLong { len } => {
                write!(f, "codeword of {len} bits exceeds the 64-bit limit")
            }
        }
    }
}

impl std::error::Error for ParseCodewordError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for s in ["", "0", "1", "110", "11001", "1111", "010101010101"] {
            let c: Codeword = s.parse().unwrap();
            assert_eq!(c.to_string(), s);
            assert_eq!(c.len(), s.len());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            "10a".parse::<Codeword>(),
            Err(ParseCodewordError::BadChar { found: 'a' })
        ));
        let long = "0".repeat(65);
        assert!(matches!(
            long.parse::<Codeword>(),
            Err(ParseCodewordError::TooLong { len: 65 })
        ));
    }

    #[test]
    fn prefix_relation() {
        let a: Codeword = "11".parse().unwrap();
        let b: Codeword = "110".parse().unwrap();
        let c: Codeword = "10".parse().unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
        assert!(!c.is_prefix_of(&b));
        assert!(Codeword::empty().is_prefix_of(&a));
    }

    #[test]
    fn push_builds_msb_first() {
        let c = Codeword::empty().push(true).push(false).push(true);
        assert_eq!(c.to_string(), "101");
        assert_eq!(c.bits(), 0b101);
    }

    #[test]
    fn from_bits_matches_string() {
        assert_eq!(Codeword::from_bits(0b11001, 5).to_string(), "11001");
        assert_eq!(Codeword::from_bits(0b11111111, 4).to_string(), "1111");
    }

    #[test]
    fn full_width_codeword() {
        let c = Codeword::from_bits(u64::MAX, 64);
        assert_eq!(c.len(), 64);
        assert!(c.bit(0) && c.bit(63));
    }

    #[test]
    fn iter_is_exact_size() {
        let c: Codeword = "101".parse().unwrap();
        assert_eq!(c.iter().len(), 3);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![true, false, true]);
    }
}
