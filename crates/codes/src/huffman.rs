//! Huffman and canonical Huffman codes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::codeword::Codeword;
use crate::prefix::PrefixCode;

/// Computes optimal (minimum-redundancy) codeword lengths for the given
/// symbol frequencies using Huffman's algorithm (the paper's reference
/// \[29\]).
///
/// Zero-frequency symbols get length `0`, meaning *no codeword allocated* —
/// the paper notes that "an MV with a frequency of 0 can be simply left out
/// without allocating a codeword to it" (Section 3.3). A single used symbol
/// also gets length `0` (nothing needs to be transmitted to identify it);
/// callers that require a non-degenerate code should clamp to one bit.
///
/// Ties are broken deterministically (by symbol index) so repeated runs
/// produce identical codes.
///
/// # Example
///
/// ```
/// use evotc_codes::huffman_lengths;
///
/// assert_eq!(huffman_lengths(&[5, 3, 2]), vec![1, 2, 2]);
/// assert_eq!(huffman_lengths(&[4, 0, 1]), vec![1, 0, 1]);
/// ```
pub fn huffman_lengths(freqs: &[u64]) -> Vec<usize> {
    let used: Vec<usize> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, _)| i)
        .collect();
    let mut lengths = vec![0usize; freqs.len()];
    match used.len() {
        0 => return lengths,
        1 => return lengths, // single symbol: zero bits suffice
        _ => {}
    }

    // Nodes: leaves are (freq, tiebreak, id); internal nodes get fresh ids.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Item {
        freq: u64,
        tiebreak: u64,
        node: usize,
    }
    let mut parent: Vec<Option<usize>> = vec![None; used.len()];
    let mut heap: BinaryHeap<Reverse<Item>> = used
        .iter()
        .enumerate()
        .map(|(node, &sym)| {
            Reverse(Item {
                freq: freqs[sym],
                tiebreak: sym as u64,
                node,
            })
        })
        .collect();
    let mut next_tiebreak = freqs.len() as u64;
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1").0;
        let b = heap.pop().expect("len > 1").0;
        let merged = parent.len();
        parent.push(None);
        parent[a.node] = Some(merged);
        parent[b.node] = Some(merged);
        heap.push(Reverse(Item {
            freq: a.freq + b.freq,
            tiebreak: next_tiebreak,
            node: merged,
        }));
        next_tiebreak += 1;
    }
    for (leaf, &sym) in used.iter().enumerate() {
        let mut depth = 0usize;
        let mut at = leaf;
        while let Some(p) = parent[at] {
            depth += 1;
            at = p;
        }
        lengths[sym] = depth;
    }
    lengths
}

/// Assigns canonical codewords to the given lengths.
///
/// Symbols with length `0` receive the empty codeword (unused symbols).
/// Canonical assignment orders codewords by `(length, symbol index)` which
/// minimizes decoder table complexity and makes the code reproducible.
///
/// # Panics
///
/// Panics if the lengths violate the Kraft inequality (cannot form a prefix
/// code) or exceed 64 bits.
pub fn canonical_codewords(lengths: &[usize]) -> Vec<Codeword> {
    let mut order: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
    order.sort_by_key(|&i| (lengths[i], i));
    let mut out = vec![Codeword::empty(); lengths.len()];
    let mut code: u64 = 0;
    let mut prev_len = 0usize;
    for &i in &order {
        let len = lengths[i];
        assert!(len <= Codeword::MAX_LEN, "codeword length {len} too large");
        code <<= len - prev_len;
        out[i] = Codeword::from_bits(code, len);
        // Detect Kraft violation: the incremented code must still fit.
        let fits = if len == 64 {
            code != u64::MAX
        } else {
            code < (1u64 << len)
        };
        assert!(fits, "codeword lengths violate the Kraft inequality");
        code += 1;
        prev_len = len;
    }
    out
}

/// Builds a canonical prefix code from codeword lengths, keeping only the
/// used symbols meaningful (unused symbols share the empty codeword and must
/// not be encoded).
///
/// # Panics
///
/// Panics on Kraft violations, as for [`canonical_codewords`].
pub fn canonical_code(lengths: &[usize]) -> PrefixCode {
    let words = canonical_codewords(lengths);
    // PrefixCode validation rejects empty codewords in multi-symbol codes, so
    // validate over used symbols only, then re-inflate.
    let used: Vec<Codeword> = words.iter().copied().filter(|c| !c.is_empty()).collect();
    if used.len() >= 2 {
        PrefixCode::new(used).expect("canonical codewords form a prefix code");
    }
    PrefixCode::new_unchecked(words)
}

/// Reusable buffers for [`huffman_weighted_length`].
///
/// The EA fitness kernel computes a Huffman *cost* thousands of times per
/// generation; keeping the two merge queues alive across calls makes the
/// computation allocation-free after the first use.
#[derive(Debug, Clone, Default)]
pub struct HuffmanScratch {
    /// Nonzero frequencies, sorted ascending (the leaf queue).
    leaves: Vec<u64>,
    /// Merge weights in creation order (nondecreasing — the node queue).
    merged: Vec<u64>,
}

impl HuffmanScratch {
    /// Creates empty scratch buffers; they grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        HuffmanScratch::default()
    }
}

/// Computes `Σ fᵢ·lᵢ` — the total codeword bits of an optimal
/// (minimum-redundancy) prefix code for `freqs` — without building a tree,
/// codewords, or a [`PrefixCode`].
///
/// Uses the sum-of-merge-weights identity: the weighted external path length
/// of a Huffman tree equals the sum of the weights of all internal (merged)
/// nodes. The two-queue construction over pre-sorted leaves makes each call
/// `O(n log n)` time and zero allocations once `scratch` has warmed up.
///
/// The result is **bit-identical** to pricing the code built by
/// [`huffman_code`]: all optimal prefix codes share the same weighted total,
/// so tie-breaking differences cannot change the sum, and the degenerate
/// cases match `huffman_code`'s conventions — zero-frequency symbols cost
/// nothing, and a single used symbol is clamped to a one-bit codeword.
///
/// # Example
///
/// ```
/// use evotc_codes::{huffman_weighted_length, HuffmanScratch};
///
/// let mut scratch = HuffmanScratch::new();
/// // freqs 5,3,2 -> lengths 1,2,2 -> 5*1 + 3*2 + 2*2 = 15 bits
/// assert_eq!(huffman_weighted_length(&[5, 3, 2], &mut scratch), 15);
/// // Single used symbol: clamped to one bit, as in `huffman_code`.
/// assert_eq!(huffman_weighted_length(&[0, 42, 0], &mut scratch), 42);
/// ```
pub fn huffman_weighted_length(freqs: &[u64], scratch: &mut HuffmanScratch) -> u64 {
    scratch.leaves.clear();
    scratch
        .leaves
        .extend(freqs.iter().copied().filter(|&f| f > 0));
    scratch.leaves.sort_unstable();
    merge_total(&scratch.leaves, &mut scratch.merged)
}

/// The two-queue Huffman merge over a pre-sorted leaf queue: the smallest
/// unconsumed weight is always at the front of either the sorted leaf queue
/// or the FIFO of merge results (merge weights are produced in nondecreasing
/// order). Shared by [`huffman_weighted_length`] and
/// [`huffman_weighted_length_delta`], so the two paths cannot drift apart.
fn merge_total(leaves: &[u64], merged: &mut Vec<u64>) -> u64 {
    merged.clear();
    match leaves.len() {
        0 => return 0,
        // One used symbol: `huffman_code` clamps its codeword to one bit so
        // the stream stays self-delimiting; price it the same way.
        1 => return leaves[0],
        _ => {}
    }
    let mut li = 0usize; // front of the leaf queue
    let mut mi = 0usize; // front of the merged queue
    let mut total = 0u64;
    let rounds = leaves.len() - 1;
    for _ in 0..rounds {
        let mut take = || {
            let leaf = leaves.get(li).copied();
            let node = merged.get(mi).copied();
            match (leaf, node) {
                // Prefer the leaf on ties: either choice yields an optimal
                // tree, and therefore the same total.
                (Some(l), Some(n)) if l <= n => {
                    li += 1;
                    l
                }
                (Some(l), None) => {
                    li += 1;
                    l
                }
                (_, Some(n)) => {
                    mi += 1;
                    n
                }
                (None, None) => unreachable!("queues exhausted before n-1 merges"),
            }
        };
        let merged_weight = take() + take();
        total += merged_weight;
        merged.push(merged_weight);
    }
    total
}

/// The sorted nonzero-frequency leaf queue of a previous Huffman pricing,
/// kept alive so a later pricing that changes only a few frequencies can be
/// computed from a delta instead of a fresh sort (see
/// [`huffman_weighted_length_delta`]).
#[derive(Debug, Clone, Default)]
pub struct HuffmanDeltaState {
    /// Nonzero frequencies, sorted ascending.
    leaves: Vec<u64>,
    /// Cached `Σ fᵢ·lᵢ` of `leaves` — maintained eagerly by [`reset`] and
    /// [`adopt_leaves_from`], so an all-no-op delta can be priced without
    /// re-running the merge.
    ///
    /// [`reset`]: HuffmanDeltaState::reset
    /// [`adopt_leaves_from`]: HuffmanDeltaState::adopt_leaves_from
    total: u64,
    /// Merge-weight FIFO (scratch for the two-queue merge).
    merged: Vec<u64>,
    /// Sorted removals of the current batched patch (scratch).
    removals: Vec<u64>,
    /// Sorted insertions of the current batched patch (scratch).
    insertions: Vec<u64>,
}

impl HuffmanDeltaState {
    /// Creates an empty state (no symbols used).
    pub fn new() -> Self {
        HuffmanDeltaState::default()
    }

    /// Rebuilds the leaf queue from a frequency vector, dropping zeros, and
    /// recomputes the cached weighted length.
    pub fn reset(&mut self, freqs: &[u64]) {
        self.leaves.clear();
        self.leaves.extend(freqs.iter().copied().filter(|&f| f > 0));
        self.leaves.sort_unstable();
        self.total = merge_total(&self.leaves, &mut self.merged);
    }

    /// The sorted nonzero frequencies currently held.
    pub fn leaves(&self) -> &[u64] {
        &self.leaves
    }

    /// Total codeword bits of an optimal prefix code for the held
    /// frequencies — [`huffman_weighted_length`] without the sort (cached,
    /// so this is free).
    pub fn weighted_length(&self) -> u64 {
        self.total
    }

    /// Replaces this state's leaf queue with `patched`'s, swapping buffers
    /// so neither side allocates — how a cached base state adopts the queue
    /// a committed [`huffman_weighted_length_delta`] evaluation produced in
    /// its scratch. `total` must be that evaluation's result (the weighted
    /// length of the adopted queue); it refreshes the cache that keeps
    /// no-op deltas free. `patched`'s queue is the base's old queue
    /// afterwards.
    pub fn adopt_leaves_from(&mut self, patched: &mut HuffmanDeltaState, total: u64) {
        std::mem::swap(&mut self.leaves, &mut patched.leaves);
        self.total = total;
    }
}

/// Computes `Σ fᵢ·lᵢ` for a frequency vector that differs from `base` in a
/// few entries, without re-sorting from scratch: `base`'s sorted leaf queue
/// is copied into `scratch`, each `(old, new)` change is applied with a
/// binary-searched remove/insert (a frequency of `0` on either side means
/// the symbol is absent there), and the two-queue merge runs over the
/// patched queue.
///
/// `base` is untouched, so one cached parent state can price many
/// speculative children. The result is **bit-identical** to
/// [`huffman_weighted_length`] over the patched frequency vector — both are
/// the unique optimal weighted total of the same leaf multiset.
///
/// # Panics
///
/// Panics if a change's `old` frequency is not present in `base` — the
/// caller's bookkeeping of what changed is wrong, and pricing a queue that
/// silently drifted from the real frequencies would corrupt every
/// evaluation after it.
///
/// # Example
///
/// ```
/// use evotc_codes::{
///     huffman_weighted_length, huffman_weighted_length_delta, HuffmanDeltaState, HuffmanScratch,
/// };
///
/// let mut base = HuffmanDeltaState::new();
/// base.reset(&[5, 3, 2]);
/// let mut scratch = HuffmanDeltaState::new();
/// // 5,3,2 -> 5,3,4: same total as pricing [5, 3, 4] from scratch.
/// let patched = huffman_weighted_length_delta(&base, &[(2, 4)], &mut scratch);
/// assert_eq!(
///     patched,
///     huffman_weighted_length(&[5, 3, 4], &mut HuffmanScratch::new())
/// );
/// // The base state still prices the original frequencies.
/// assert_eq!(base.leaves(), &[2, 3, 5]);
/// ```
pub fn huffman_weighted_length_delta(
    base: &HuffmanDeltaState,
    changes: &[(u64, u64)],
    scratch: &mut HuffmanDeltaState,
) -> u64 {
    let effective = changes.iter().filter(|(old, new)| old != new).count();
    if effective == 0 {
        // An all-no-op netted delta (every `old == new`, e.g. a crossover
        // window whose frequency changes cancel out): the patched queue IS
        // the base queue, already priced. Skip the patch machinery and the
        // merge entirely — the queue is only mirrored into `scratch` so a
        // later `adopt_leaves_from` still hands the base a valid copy.
        // No-op pairs are never validated against the queue, so phantom
        // `(x, x)` entries cannot panic here regardless of how many there
        // are.
        scratch.leaves.clone_from(&base.leaves);
        return base.weighted_length();
    }
    if effective > BATCH_PATCH_THRESHOLD {
        patch_leaves_batched(base, changes, scratch);
    } else {
        patch_leaves_pointwise(base, changes, scratch);
    }
    let leaves = std::mem::take(&mut scratch.leaves);
    let total = merge_total(&leaves, &mut scratch.merged);
    scratch.leaves = leaves;
    total
}

/// Above this many effective changes the batched merge patch beats repeated
/// `Vec::remove`/`insert` shifts (each `O(n)`); below it, the pointwise
/// binary searches have the smaller constant. Both produce the identical
/// leaf multiset, so the crossover point is pure tuning.
const BATCH_PATCH_THRESHOLD: usize = 3;

/// The single-edit patch: one binary-searched remove/insert per change.
fn patch_leaves_pointwise(
    base: &HuffmanDeltaState,
    changes: &[(u64, u64)],
    scratch: &mut HuffmanDeltaState,
) {
    scratch.leaves.clear();
    scratch.leaves.extend_from_slice(&base.leaves);
    for &(old, new) in changes {
        if old == new {
            continue;
        }
        if old > 0 {
            let at = scratch
                .leaves
                .binary_search(&old)
                .unwrap_or_else(|_| panic!("old frequency {old} not in the leaf queue"));
            scratch.leaves.remove(at);
        }
        if new > 0 {
            let at = scratch.leaves.binary_search(&new).unwrap_or_else(|e| e);
            scratch.leaves.insert(at, new);
        }
    }
}

/// The multi-edit patch: sorts the removals and insertions once, then
/// produces the patched queue in a single three-way merge pass over the base
/// queue — `O(n + c log c)` for `c` changes instead of `O(n · c)` shifting.
/// This is what keeps wide crossover/inversion windows (many MV frequencies
/// changing at once) as cheap to re-price as a point mutation.
fn patch_leaves_batched(
    base: &HuffmanDeltaState,
    changes: &[(u64, u64)],
    scratch: &mut HuffmanDeltaState,
) {
    scratch.removals.clear();
    scratch.insertions.clear();
    for &(old, new) in changes {
        if old == new {
            continue;
        }
        if old > 0 {
            scratch.removals.push(old);
        }
        if new > 0 {
            scratch.insertions.push(new);
        }
    }
    scratch.removals.sort_unstable();
    scratch.insertions.sort_unstable();

    scratch.leaves.clear();
    let mut ri = 0usize; // front of the sorted removal queue
    let mut ii = 0usize; // front of the sorted insertion queue
    for &leaf in &base.leaves {
        // Multiset subtraction: each removal cancels exactly one equal leaf.
        // A removal smaller than the current leaf can no longer match
        // anything (both queues are sorted) — the caller's bookkeeping of
        // what changed is wrong, exactly as in the pointwise path.
        if ri < scratch.removals.len() && scratch.removals[ri] == leaf {
            ri += 1;
            continue;
        }
        assert!(
            ri >= scratch.removals.len() || scratch.removals[ri] > leaf,
            "old frequency {} not in the leaf queue",
            scratch.removals[ri]
        );
        while ii < scratch.insertions.len() && scratch.insertions[ii] <= leaf {
            scratch.leaves.push(scratch.insertions[ii]);
            ii += 1;
        }
        scratch.leaves.push(leaf);
    }
    assert!(
        ri >= scratch.removals.len(),
        "old frequency {} not in the leaf queue",
        scratch.removals[ri]
    );
    while ii < scratch.insertions.len() {
        scratch.leaves.push(scratch.insertions[ii]);
        ii += 1;
    }
}

/// Builds an optimal prefix code directly from frequencies:
/// Huffman lengths + canonical assignment. With exactly one used symbol the
/// codeword is clamped to one bit (`0`) so the stream remains self-delimiting
/// for hardware decoders.
///
/// # Example
///
/// ```
/// use evotc_codes::huffman_code;
///
/// let code = huffman_code(&[8, 1, 1]);
/// assert_eq!(code.codeword(0).len(), 1);
/// assert_eq!(code.codeword(1).len(), 2);
/// ```
pub fn huffman_code(freqs: &[u64]) -> PrefixCode {
    let mut lengths = huffman_lengths(freqs);
    let used = freqs.iter().filter(|&&f| f > 0).count();
    if used == 1 {
        let only = freqs
            .iter()
            .position(|&f| f > 0)
            .expect("one symbol is used");
        lengths[only] = 1;
    }
    canonical_code(&lengths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_bits(freqs: &[u64]) -> u64 {
        let code = huffman_code(freqs);
        code.codewords()
            .iter()
            .zip(freqs)
            .map(|(c, &f)| c.len() as u64 * f)
            .sum()
    }

    #[test]
    fn classic_example() {
        // freqs 5,3,2 -> lengths 1,2,2 -> 5*1+3*2+2*2 = 15 bits
        assert_eq!(total_bits(&[5, 3, 2]), 15);
    }

    #[test]
    fn paper_section_3_3_example() {
        // v1 freq 5, v2 freq 3, v3 freq 2: Huffman gives C(v1)='0',
        // C(v2)/C(v3) two bits each (paper, Section 3.3).
        let code = huffman_code(&[5, 3, 2]);
        assert_eq!(code.codeword(0).len(), 1);
        assert_eq!(code.codeword(1).len(), 2);
        assert_eq!(code.codeword(2).len(), 2);
    }

    #[test]
    fn zero_frequency_symbols_are_skipped() {
        let lengths = huffman_lengths(&[0, 7, 0, 7]);
        assert_eq!(lengths, vec![0, 1, 0, 1]);
        let code = huffman_code(&[0, 7, 0, 7]);
        assert!(code.codeword(0).is_empty());
        assert_eq!(code.codeword(1).len(), 1);
    }

    #[test]
    fn single_used_symbol_clamped_to_one_bit() {
        let code = huffman_code(&[0, 42, 0]);
        assert_eq!(code.codeword(1).len(), 1);
    }

    #[test]
    fn all_zero_frequencies_yield_empty_words() {
        let lengths = huffman_lengths(&[0, 0]);
        assert_eq!(lengths, vec![0, 0]);
    }

    #[test]
    fn equal_frequencies_give_balanced_code() {
        let lengths = huffman_lengths(&[1, 1, 1, 1]);
        assert_eq!(lengths, vec![2, 2, 2, 2]);
    }

    #[test]
    fn huffman_beats_or_ties_fixed_length() {
        // For skewed distributions Huffman must beat ceil(log2(n))-bit codes.
        let freqs = [100, 10, 5, 1];
        let fixed = 2 * freqs.iter().sum::<u64>();
        assert!(total_bits(&freqs) < fixed);
    }

    #[test]
    fn canonical_codewords_are_sorted_and_prefix_free() {
        let lengths = huffman_lengths(&[9, 5, 3, 2, 1]);
        let words = canonical_codewords(&lengths);
        for (i, a) in words.iter().enumerate() {
            for (j, b) in words.iter().enumerate() {
                if i != j && !a.is_empty() && !b.is_empty() {
                    assert!(!a.is_prefix_of(b), "{a} prefixes {b}");
                }
            }
        }
    }

    #[test]
    fn deterministic_under_ties() {
        let a = huffman_code(&[3, 3, 3, 3, 3]);
        let b = huffman_code(&[3, 3, 3, 3, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_length_matches_code_pricing() {
        let mut scratch = HuffmanScratch::new();
        let cases: [&[u64]; 10] = [
            &[5, 3, 2],
            &[1, 1, 1, 1],
            &[100, 10, 5, 1],
            &[0, 7, 0, 7],
            &[0, 42, 0],
            &[0, 0],
            &[],
            &[3, 3, 3, 3, 3],
            &[9, 5, 3, 2, 1],
            &[1, 2, 4, 8, 16, 32, 64, 128],
        ];
        for freqs in cases {
            assert_eq!(
                huffman_weighted_length(freqs, &mut scratch),
                total_bits(freqs),
                "freqs {freqs:?}"
            );
        }
    }

    #[test]
    fn weighted_length_scratch_is_reusable_across_shapes() {
        // Alternate large and small inputs through one scratch: stale
        // buffer contents must never leak into a later call.
        let mut scratch = HuffmanScratch::new();
        for _ in 0..3 {
            assert_eq!(huffman_weighted_length(&[5, 3, 2], &mut scratch), 15);
            let big: Vec<u64> = (1..=64).collect();
            assert_eq!(
                huffman_weighted_length(&big, &mut scratch),
                total_bits(&big)
            );
            assert_eq!(huffman_weighted_length(&[0, 0, 9], &mut scratch), 9);
        }
    }

    #[test]
    fn delta_pricing_matches_full_pricing() {
        let mut full = HuffmanScratch::new();
        let mut scratch = HuffmanDeltaState::new();
        type Case = (&'static [u64], &'static [(u64, u64)], &'static [u64]);
        let cases: [Case; 6] = [
            // (base freqs, changes, patched freqs)
            (&[5, 3, 2], &[(2, 4)], &[5, 3, 4]),
            (&[5, 3, 2], &[(5, 0)], &[0, 3, 2]), // removal
            (&[5, 3], &[(0, 9)], &[5, 3, 9]),    // insertion
            (&[7, 7, 7], &[(7, 1), (7, 2)], &[1, 2, 7]), // duplicates
            (&[4], &[(4, 0)], &[]),              // down to no symbols
            (&[], &[(0, 6)], &[6]),              // up from none
        ];
        for (base_freqs, changes, patched) in cases {
            let mut base = HuffmanDeltaState::new();
            base.reset(base_freqs);
            let before = base.leaves().to_vec();
            let delta = huffman_weighted_length_delta(&base, changes, &mut scratch);
            assert_eq!(
                delta,
                huffman_weighted_length(patched, &mut full),
                "base {base_freqs:?} changes {changes:?}"
            );
            // The base state is untouched and still prices the original.
            assert_eq!(base.leaves(), before);
            assert_eq!(
                base.weighted_length(),
                huffman_weighted_length(base_freqs, &mut full)
            );
        }
    }

    #[test]
    fn batched_delta_matches_pointwise_and_full_pricing() {
        // More than BATCH_PATCH_THRESHOLD effective changes routes through
        // the merge-based patch; the result must equal both the pointwise
        // patch and pricing the patched vector from scratch.
        let mut full = HuffmanScratch::new();
        let mut base = HuffmanDeltaState::new();
        base.reset(&[5, 3, 2, 7, 7, 11, 1]);
        let changes: Vec<(u64, u64)> = vec![(5, 6), (3, 0), (0, 4), (7, 2), (7, 7), (11, 1)];
        assert!(changes.iter().filter(|(o, n)| o != n).count() > super::BATCH_PATCH_THRESHOLD);
        let mut scratch = HuffmanDeltaState::new();
        let batched = huffman_weighted_length_delta(&base, &changes, &mut scratch);
        let patched: &[u64] = &[6, 0, 2, 2, 7, 1, 1, 4];
        assert_eq!(batched, huffman_weighted_length(patched, &mut full));
        // Pointwise on the same changes (splitting keeps each call under the
        // threshold) agrees step by step.
        let mut state = HuffmanDeltaState::new();
        state.reset(&[5, 3, 2, 7, 7, 11, 1]);
        for change in &changes {
            let mut one = HuffmanDeltaState::new();
            let total =
                huffman_weighted_length_delta(&state, std::slice::from_ref(change), &mut one);
            state.adopt_leaves_from(&mut one, total);
        }
        assert_eq!(state.weighted_length(), batched);
        // The base is untouched either way.
        assert_eq!(base.leaves(), &[1, 2, 3, 5, 7, 7, 11]);
    }

    #[test]
    fn all_noop_delta_early_returns_without_patching() {
        // Regression: an all-zero netted delta (every old == new) must be
        // priced straight from the base's cached total — no patch, no merge
        // — while still mirroring the queue into the scratch so a commit's
        // `adopt_leaves_from` stays valid.
        let mut full = HuffmanScratch::new();
        let mut base = HuffmanDeltaState::new();
        base.reset(&[5, 3, 2, 7]);
        let mut scratch = HuffmanDeltaState::new();
        // Phantom (x, x) pairs — values absent from the queue — are legal
        // no-ops and must not panic, even with enough of them to exceed the
        // batched-path threshold were they counted as effective.
        let noop = [(5u64, 5u64), (100, 100), (0, 0), (42, 42), (7, 7)];
        assert!(noop.len() > super::BATCH_PATCH_THRESHOLD);
        let total = huffman_weighted_length_delta(&base, &noop, &mut scratch);
        assert_eq!(total, huffman_weighted_length(&[5, 3, 2, 7], &mut full));
        assert_eq!(base.leaves(), &[2, 3, 5, 7]);
        // The scratch holds an adoptable copy of the (unchanged) queue.
        let leaves_before = base.leaves().to_vec();
        base.adopt_leaves_from(&mut scratch, total);
        assert_eq!(base.leaves(), leaves_before);
        assert_eq!(base.weighted_length(), total);
        // The empty change list takes the same early return.
        assert_eq!(
            huffman_weighted_length_delta(&base, &[], &mut scratch),
            total
        );
    }

    #[test]
    #[should_panic(expected = "not in the leaf queue")]
    fn batched_delta_rejects_phantom_old_frequencies() {
        let mut base = HuffmanDeltaState::new();
        base.reset(&[5, 3, 9, 9]);
        // 5 effective changes force the batched path; the (4, _) removal is
        // phantom.
        let changes = [(5, 1), (3, 2), (9, 8), (9, 7), (4, 6)];
        let _ = huffman_weighted_length_delta(&base, &changes, &mut HuffmanDeltaState::new());
    }

    #[test]
    fn delta_state_reset_drops_zeros_and_sorts() {
        let mut state = HuffmanDeltaState::new();
        state.reset(&[0, 9, 0, 2, 5]);
        assert_eq!(state.leaves(), &[2, 5, 9]);
        assert_eq!(
            state.weighted_length(),
            huffman_weighted_length(&[9, 2, 5], &mut HuffmanScratch::new())
        );
    }

    #[test]
    #[should_panic(expected = "not in the leaf queue")]
    fn delta_rejects_phantom_old_frequencies() {
        let mut base = HuffmanDeltaState::new();
        base.reset(&[5, 3]);
        let _ = huffman_weighted_length_delta(&base, &[(4, 1)], &mut HuffmanDeltaState::new());
    }

    #[test]
    fn optimality_vs_exhaustive_small() {
        // Compare against brute force over all monotone length vectors for
        // 3 symbols with small lengths.
        let freqs = [7u64, 2, 1];
        let best_huff = total_bits(&freqs);
        let mut best = u64::MAX;
        for l0 in 1..=3u64 {
            for l1 in 1..=3u64 {
                for l2 in 1..=3u64 {
                    let kraft: f64 = [l0, l1, l2].iter().map(|&l| 2f64.powi(-(l as i32))).sum();
                    if kraft <= 1.0 + 1e-12 {
                        best = best.min(7 * l0 + 2 * l1 + l2);
                    }
                }
            }
        }
        assert_eq!(best_huff, best);
    }
}
