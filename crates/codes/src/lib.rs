//! Prefix and Huffman coding for code-based test compression.
//!
//! Code-based test compression assigns a binary *codeword* to each symbol (in
//! the DATE 2005 paper, to each matching vector); the whole code must be a
//! prefix code so the on-chip decoder can decode the serial stream without
//! lookahead. This crate provides:
//!
//! * [`Codeword`] — an immutable bit string.
//! * [`PrefixCode`] — a validated prefix code over `L` symbols plus a decode
//!   tree ([`DecodeTree`]).
//! * [`huffman_code`] / [`huffman_lengths`] — minimum-redundancy codes from
//!   symbol frequencies (Huffman 1952, the paper's reference \[29\]).
//! * [`huffman_weighted_length`] — the *cost* of an optimal code (total
//!   codeword bits) without materializing a tree or codewords; the
//!   allocation-free form the EA fitness kernel uses, with reusable
//!   [`HuffmanScratch`] buffers.
//! * [`canonical_code`] — the canonical reassignment of Huffman lengths used
//!   to keep decoder hardware small.
//! * Baseline coders from the paper's related-work section: run-length
//!   ([`runlength`]), Golomb ([`golomb`]), frequency-directed run-length
//!   ([`fdr`]) and selective Huffman ([`selective`]) — used by the harness to
//!   put the EA results next to the classic schemes.
//!
//! # Example
//!
//! ```
//! use evotc_codes::{huffman_code, PrefixCode};
//!
//! let code = huffman_code(&[5, 3, 2]);
//! assert_eq!(code.len(), 3);
//! // Most frequent symbol gets the shortest codeword.
//! assert!(code.codeword(0).len() <= code.codeword(2).len());
//! assert!(code.kraft_sum_is_one());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod codeword;
mod decode;
pub mod fdr;
pub mod golomb;
mod huffman;
mod prefix;
pub mod runlength;
pub mod selective;

pub use area::{decoder_area, huffman_fsm_states, DecoderArea};
pub use codeword::{Codeword, ParseCodewordError};
pub use decode::{DecodeTree, Step, Walk};
pub use huffman::{
    canonical_code, huffman_code, huffman_lengths, huffman_weighted_length,
    huffman_weighted_length_delta, HuffmanDeltaState, HuffmanScratch,
};
pub use prefix::{BuildPrefixCodeError, PrefixCode};
