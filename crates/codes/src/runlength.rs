//! Fixed run-length coding (Jas/Touba, the paper's reference \[1\]).
//!
//! The classic cyclical-scan scheme encodes runs of `0`s terminated by a `1`
//! with a fixed-width `b`-bit counter. A run of length `r < 2^b - 1` followed
//! by a `1` is emitted as the `b`-bit value `r`; the maximal counter value
//! `2^b - 1` means "`2^b - 1` zeros and **no** terminating one", allowing
//! longer runs to be split.
//!
//! All baseline coders in this crate operate on fully specified bit slices;
//! callers fill don't-cares (zero-fill maximizes run lengths and is the
//! standard choice for run-length-style codes).

use std::fmt;

/// Encodes `bits` with a `b`-bit run-length code, returning the encoded bit
/// vector.
///
/// # Panics
///
/// Panics if `b` is `0` or greater than 32.
///
/// # Example
///
/// ```
/// use evotc_codes::runlength;
///
/// let data = [false, false, true, true];
/// let enc = runlength::encode(&data, 3);
/// assert_eq!(runlength::decode(&enc, 3), data);
/// ```
pub fn encode(bits: &[bool], b: usize) -> Vec<bool> {
    assert!(b > 0 && b <= 32, "counter width must be in 1..=32");
    let max = (1u64 << b) - 1;
    let mut out = Vec::new();
    let mut run = 0u64;
    let push_counter = |out: &mut Vec<bool>, v: u64| {
        for i in (0..b).rev() {
            out.push((v >> i) & 1 == 1);
        }
    };
    for &bit in bits {
        if bit {
            push_counter(&mut out, run);
            run = 0;
        } else {
            run += 1;
            if run == max {
                push_counter(&mut out, max);
                run = 0;
            }
        }
    }
    if run > 0 {
        // Trailing zeros without a terminating one: the emitted counter
        // implies a terminating 1 one position past the payload; decoders
        // cut at the payload length.
        push_counter(&mut out, run);
    }
    out
}

/// Decodes a run-length-coded stream produced by [`encode`].
///
/// The decoded sequence may include one trailing synthetic `1` if the
/// original data ended in a run of zeros; callers should truncate to the
/// known payload length (see [`decode_to_len`]).
///
/// # Panics
///
/// Panics if `b` is `0` or greater than 32, or the stream length is not a
/// multiple of `b`.
pub fn decode(enc: &[bool], b: usize) -> Vec<bool> {
    assert!(b > 0 && b <= 32, "counter width must be in 1..=32");
    assert!(
        enc.len() % b == 0,
        "stream is not a whole number of counters"
    );
    let max = (1u64 << b) - 1;
    let mut out = Vec::new();
    for chunk in enc.chunks(b) {
        let mut v = 0u64;
        for &bit in chunk {
            v = (v << 1) | u64::from(bit);
        }
        out.resize(out.len() + v as usize, false);
        if v != max {
            out.push(true);
        }
    }
    out
}

/// Decodes and truncates/validates against a known payload length.
///
/// # Panics
///
/// Panics if the decoded stream is shorter than `len` or longer than
/// `len + 1` (the one allowed synthetic trailing bit).
pub fn decode_to_len(enc: &[bool], b: usize, len: usize) -> Vec<bool> {
    let mut out = decode(enc, b);
    assert!(
        out.len() >= len && out.len() <= len + 1,
        "decoded {} bits, expected {len}",
        out.len()
    );
    out.truncate(len);
    out
}

/// Size, in bits, of the run-length encoding without materializing it.
pub fn encoded_len(bits: &[bool], b: usize) -> usize {
    encode(bits, b).len()
}

/// Report describing a run-length compression outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunLengthReport {
    /// Counter width used.
    pub counter_bits: usize,
    /// Original size in bits.
    pub original_bits: usize,
    /// Encoded size in bits.
    pub encoded_bits: usize,
}

impl RunLengthReport {
    /// Compression rate `100·(orig − enc)/orig` (may be negative).
    pub fn rate_percent(&self) -> f64 {
        if self.original_bits == 0 {
            return 0.0;
        }
        100.0 * (self.original_bits as f64 - self.encoded_bits as f64) / self.original_bits as f64
    }
}

impl fmt::Display for RunLengthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run-length(b={}): {} -> {} bits ({:.1}%)",
            self.counter_bits,
            self.original_bits,
            self.encoded_bits,
            self.rate_percent()
        )
    }
}

/// Compresses and reports in one call.
pub fn compress(bits: &[bool], b: usize) -> RunLengthReport {
    RunLengthReport {
        counter_bits: b,
        original_bits: bits.len(),
        encoded_bits: encoded_len(bits, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(bits: &[bool], b: usize) {
        let enc = encode(bits, b);
        let dec = decode_to_len(&enc, b, bits.len());
        assert_eq!(dec, bits);
    }

    #[test]
    fn short_runs() {
        round_trip(&[true, true, true], 2);
        round_trip(&[false, true, false, false, true], 3);
    }

    #[test]
    fn run_longer_than_counter_is_split() {
        let bits = vec![false; 20]
            .into_iter()
            .chain([true])
            .collect::<Vec<_>>();
        round_trip(&bits, 3);
    }

    #[test]
    fn trailing_zeros_handled() {
        round_trip(&[true, false, false, false], 3);
        round_trip(&[false, false], 4);
    }

    #[test]
    fn empty_input() {
        assert!(encode(&[], 4).is_empty());
        assert!(decode(&[], 4).is_empty());
    }

    #[test]
    fn sparse_ones_compress() {
        // 0^15 1 repeated: 16 bits per run → 4-bit counters = 4 bits per run
        let mut bits = Vec::new();
        for _ in 0..8 {
            bits.extend(std::iter::repeat(false).take(15));
            bits.push(true);
        }
        // Each 16-bit run (15 zeros hit the maximal counter, then the `1`
        // costs a second counter) takes two 4-bit counters: 50% compression.
        let r = compress(&bits, 4);
        assert!(r.rate_percent() >= 49.0, "{r}");
        round_trip(&bits, 4);
    }

    #[test]
    fn dense_ones_expand() {
        let bits = vec![true; 32];
        let r = compress(&bits, 4);
        assert!(r.rate_percent() < 0.0, "{r}");
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn rejects_zero_counter() {
        let _ = encode(&[true], 0);
    }
}
