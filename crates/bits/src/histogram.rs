//! Distinct-block histograms.

use crate::block::InputBlock;
use crate::test_set::TestSetString;

/// The distinct input blocks of a test-set string with their multiplicities.
///
/// Covering assigns the *same* matching vector to every occurrence of a given
/// block (the covering rule of the paper, Section 3.2, depends only on the
/// block contents), so compressed size — and therefore EA fitness — can be
/// computed over distinct blocks weighted by count. This is exact and reduces
/// the per-individual evaluation cost from `O(total_blocks · L)` to
/// `O(distinct_blocks · L)`; on large ISCAS test sets the reduction is two to
/// three orders of magnitude.
///
/// # Example
///
/// ```
/// use evotc_bits::{BlockHistogram, TestSet, TestSetString};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TestSet::parse(&["1010", "1010"])?;
/// let s = TestSetString::new(&set, 4);
/// let h = BlockHistogram::from_string(&s);
/// assert_eq!(h.num_distinct(), 1);
/// assert_eq!(h.total_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHistogram {
    k: usize,
    entries: Vec<(InputBlock, u64)>,
    total: u64,
}

impl BlockHistogram {
    /// Builds the histogram of a test-set string.
    pub fn from_string(string: &TestSetString) -> Self {
        Self::from_blocks(string.block_len(), string.blocks().iter().copied())
    }

    /// Builds a histogram from raw blocks of length `k`.
    ///
    /// # Panics
    ///
    /// Panics if a block's length differs from `k`.
    pub fn from_blocks<I: IntoIterator<Item = InputBlock>>(k: usize, blocks: I) -> Self {
        // Blocks are `Ord` (two packed words), so sort + run-length count is
        // both faster than hashing and free of any hasher state: sort the raw
        // blocks, then collapse equal runs into (block, count) entries.
        let mut all: Vec<InputBlock> = blocks.into_iter().collect();
        for b in &all {
            assert_eq!(b.len(), k, "block length mismatch");
        }
        let total = all.len() as u64;
        all.sort_unstable();
        let mut entries: Vec<(InputBlock, u64)> = Vec::new();
        for b in all {
            match entries.last_mut() {
                Some((prev, count)) if *prev == b => *count += 1,
                _ => entries.push((b, 1)),
            }
        }
        // Deterministic order: by descending count, then block value, so that
        // all downstream consumers (and test expectations) are reproducible.
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        BlockHistogram { k, entries, total }
    }

    /// Block length `K`.
    #[inline]
    pub fn block_len(&self) -> usize {
        self.k
    }

    /// Number of distinct blocks.
    #[inline]
    pub fn num_distinct(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the histogram is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of blocks (sum of multiplicities).
    #[inline]
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// Distinct `(block, count)` pairs, ordered by descending count.
    #[inline]
    pub fn entries(&self) -> &[(InputBlock, u64)] {
        &self.entries
    }

    /// Iterates over `(block, count)` pairs, ordered by descending count.
    pub fn iter(&self) -> std::slice::Iter<'_, (InputBlock, u64)> {
        self.entries.iter()
    }

    /// The multiplicity of a block (zero if absent).
    pub fn count(&self, block: &InputBlock) -> u64 {
        self.entries
            .iter()
            .find(|(b, _)| b == block)
            .map_or(0, |&(_, c)| c)
    }
}

impl<'a> IntoIterator for &'a BlockHistogram {
    type Item = &'a (InputBlock, u64);
    type IntoIter = std::slice::Iter<'a, (InputBlock, u64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::TestSet;

    fn histo(rows: &[&str], k: usize) -> BlockHistogram {
        let set = TestSet::parse(rows).unwrap();
        BlockHistogram::from_string(&TestSetString::new(&set, k))
    }

    #[test]
    fn counts_duplicates() {
        let h = histo(&["1010", "1010", "0101"], 4);
        assert_eq!(h.num_distinct(), 2);
        assert_eq!(h.total_count(), 3);
        let top = h.entries()[0];
        assert_eq!(top.0.to_string(), "1010");
        assert_eq!(top.1, 2);
    }

    #[test]
    fn order_is_deterministic() {
        let a = histo(&["1100", "0011", "1111", "0011"], 4);
        let b = histo(&["0011", "1100", "0011", "1111"], 4);
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn count_lookup() {
        let h = histo(&["1010", "1010"], 4);
        let b: InputBlock = "1010".parse().unwrap();
        let missing: InputBlock = "0000".parse().unwrap();
        assert_eq!(h.count(&b), 2);
        assert_eq!(h.count(&missing), 0);
    }

    #[test]
    fn x_blocks_are_distinct_from_specified() {
        let h = histo(&["1X10", "1010"], 4);
        assert_eq!(h.num_distinct(), 2);
    }

    #[test]
    fn sorted_build_orders_by_count_then_block() {
        // Ties on count break by ascending block order; counts descend.
        let h = histo(&["0011", "1100", "0011", "1111", "1100", "0000"], 4);
        let counts: Vec<u64> = h.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![2, 2, 1, 1]);
        // `InputBlock`'s `Ord` compares the packed planes (position 0 is the
        // low bit), so "1100" (value 0b0011) sorts before "0011" (0b1100).
        let blocks: Vec<String> = h.iter().map(|&(b, _)| b.to_string()).collect();
        assert_eq!(blocks, vec!["1100", "0011", "0000", "1111"]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mixed_lengths() {
        let a: InputBlock = "10".parse().unwrap();
        let b: InputBlock = "101".parse().unwrap();
        let _ = BlockHistogram::from_blocks(2, [a, b]);
    }
}
