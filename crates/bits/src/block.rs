//! Fixed-length input blocks packed into machine words.

use std::fmt;

use crate::error::{BlockLenError, ParseTritError};
use crate::trit::Trit;

/// Maximum supported input-block length `K`.
///
/// Blocks are packed into a single `u64` per plane; the paper's experiments
/// use `K ∈ {6, 8, 12}`.
pub const MAX_BLOCK_LEN: usize = 64;

/// One input block: a `K`-trit subsequence of the test-set string
/// (paper, Section 2, Definition *input block*).
///
/// The block is stored as a pair of bit planes over a single machine word:
/// `care` bit `j` is set iff position `j` is a specified (`0`/`1`) value, and
/// `value` bit `j` holds the logic value of specified positions. Position `0`
/// is the *leftmost* symbol of the block, matching the paper's string
/// notation.
///
/// # Example
///
/// ```
/// use evotc_bits::InputBlock;
///
/// let b: InputBlock = "111X00".parse().unwrap();
/// assert_eq!(b.len(), 6);
/// assert_eq!(b.num_x(), 1);
/// assert_eq!(b.to_string(), "111X00");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputBlock {
    len: u8,
    care: u64,
    value: u64,
}

impl InputBlock {
    /// Creates an all-`X` block of length `k`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockLenError`] if `k` is `0` or exceeds [`MAX_BLOCK_LEN`].
    pub fn all_x(k: usize) -> Result<Self, BlockLenError> {
        if k == 0 || k > MAX_BLOCK_LEN {
            return Err(BlockLenError { requested: k });
        }
        Ok(InputBlock {
            len: k as u8,
            care: 0,
            value: 0,
        })
    }

    /// Creates a block from raw planes.
    ///
    /// `care` bit `j` set means position `j` is specified with logic value
    /// `value` bit `j`. Bits at and above `k`, and `value` bits outside
    /// `care`, are cleared so equality stays structural.
    ///
    /// # Errors
    ///
    /// Returns [`BlockLenError`] if `k` is `0` or exceeds [`MAX_BLOCK_LEN`].
    pub fn from_planes(k: usize, care: u64, value: u64) -> Result<Self, BlockLenError> {
        let mut b = InputBlock::all_x(k)?;
        let mask = Self::len_mask(k);
        b.care = care & mask;
        b.value = value & b.care;
        Ok(b)
    }

    /// Creates a block from a slice of trits.
    ///
    /// # Errors
    ///
    /// Returns [`BlockLenError`] if the slice is empty or longer than
    /// [`MAX_BLOCK_LEN`].
    pub fn from_trits(trits: &[Trit]) -> Result<Self, BlockLenError> {
        let mut b = InputBlock::all_x(trits.len())?;
        for (j, &t) in trits.iter().enumerate() {
            b.set_trit(j, t);
        }
        Ok(b)
    }

    #[inline]
    fn len_mask(k: usize) -> u64 {
        if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Block length `K`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the block has no positions (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The care plane (bit `j` set iff position `j` is specified).
    #[inline]
    pub fn care_plane(&self) -> u64 {
        self.care
    }

    /// The value plane (logic values at specified positions, zero elsewhere).
    #[inline]
    pub fn value_plane(&self) -> u64 {
        self.value
    }

    /// Reads the trit at position `j`, or `None` for out-of-range positions.
    ///
    /// The checked counterpart of [`InputBlock::trit`], whose release-mode
    /// fallback silently reads `Trit::X` past the block length. Prefer
    /// `try_trit` (usually with `.expect(...)`) everywhere outside the
    /// fitness/encoding hot paths.
    #[inline]
    pub fn try_trit(&self, j: usize) -> Option<Trit> {
        if j < self.len() {
            Some(self.trit(j))
        } else {
            None
        }
    }

    /// Reads the trit at position `j` (0 = leftmost).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `j >= self.len()`; release builds take a
    /// safe fallback and return [`Trit::X`] — this accessor runs per fill
    /// bit on the encoding hot path. Callers off that path should use
    /// [`InputBlock::try_trit`] instead.
    #[inline]
    pub fn trit(&self, j: usize) -> Trit {
        debug_assert!(j < self.len(), "position {j} out of range {}", self.len);
        if j >= self.len() {
            return Trit::X;
        }
        if (self.care >> j) & 1 == 0 {
            Trit::X
        } else if (self.value >> j) & 1 == 1 {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Writes the trit at position `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()`.
    #[inline]
    pub fn set_trit(&mut self, j: usize, t: Trit) {
        assert!(j < self.len(), "position {j} out of range {}", self.len);
        match t {
            Trit::X => {
                self.care &= !(1 << j);
                self.value &= !(1 << j);
            }
            Trit::Zero => {
                self.care |= 1 << j;
                self.value &= !(1 << j);
            }
            Trit::One => {
                self.care |= 1 << j;
                self.value |= 1 << j;
            }
        }
    }

    /// Number of don't-care positions.
    #[inline]
    pub fn num_x(&self) -> usize {
        self.len() - self.care.count_ones() as usize
    }

    /// Number of specified positions.
    #[inline]
    pub fn num_specified(&self) -> usize {
        self.care.count_ones() as usize
    }

    /// Iterates over the trits, leftmost first.
    pub fn iter(&self) -> Iter {
        Iter {
            block: *self,
            pos: 0,
        }
    }
}

impl std::str::FromStr for InputBlock {
    type Err = ParseBlockError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trits = crate::trit::parse_trits(s).map_err(ParseBlockError::Trit)?;
        InputBlock::from_trits(&trits).map_err(ParseBlockError::Len)
    }
}

/// Error parsing an [`InputBlock`] from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseBlockError {
    /// A character outside the trit alphabet.
    Trit(ParseTritError),
    /// Length outside `1..=64`.
    Len(BlockLenError),
}

impl fmt::Display for ParseBlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBlockError::Trit(e) => e.fmt(f),
            ParseBlockError::Len(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ParseBlockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBlockError::Trit(e) => Some(e),
            ParseBlockError::Len(e) => Some(e),
        }
    }
}

impl fmt::Display for InputBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.iter() {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Iterator over the trits of an [`InputBlock`].
#[derive(Debug, Clone)]
pub struct Iter {
    block: InputBlock,
    pos: usize,
}

impl Iterator for Iter {
    type Item = Trit;

    fn next(&mut self) -> Option<Trit> {
        if self.pos < self.block.len() {
            let t = self.block.trit(self.pos);
            self.pos += 1;
            Some(t)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.block.len() - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for s in ["0", "1", "X", "111000", "UUU000", "1X0X1X0X1X0X"] {
            let b: InputBlock = s.parse().unwrap();
            assert_eq!(b.to_string(), s.replace('U', "X"));
        }
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(InputBlock::all_x(0).is_err());
        assert!(InputBlock::all_x(65).is_err());
        assert!(InputBlock::all_x(64).is_ok());
        assert!("".parse::<InputBlock>().is_err());
    }

    #[test]
    fn from_planes_masks_stray_bits() {
        // value bits outside care and bits beyond k must be cleared
        let b = InputBlock::from_planes(4, 0b0101, 0b1111).unwrap();
        assert_eq!(b.value_plane(), 0b0101);
        let c = InputBlock::from_planes(4, u64::MAX, u64::MAX).unwrap();
        assert_eq!(c.care_plane(), 0b1111);
        assert_eq!(c.to_string(), "1111");
    }

    #[test]
    fn full_width_block_works() {
        let s: String = std::iter::repeat("10X")
            .flat_map(|s| s.chars())
            .take(64)
            .collect();
        let b: InputBlock = s.parse().unwrap();
        assert_eq!(b.len(), 64);
        assert_eq!(b.to_string(), s);
    }

    #[test]
    fn position_zero_is_leftmost() {
        let b: InputBlock = "10X".parse().unwrap();
        assert_eq!(b.trit(0), Trit::One);
        assert_eq!(b.trit(1), Trit::Zero);
        assert_eq!(b.trit(2), Trit::X);
    }

    #[test]
    fn try_trit_is_checked() {
        let b: InputBlock = "10X".parse().unwrap();
        assert_eq!(b.try_trit(0), Some(Trit::One));
        assert_eq!(b.try_trit(1), Some(Trit::Zero));
        assert_eq!(b.try_trit(2), Some(Trit::X));
        assert_eq!(b.try_trit(3), None);
    }

    #[test]
    fn counts_are_consistent() {
        let b: InputBlock = "1X0XX1".parse().unwrap();
        assert_eq!(b.num_specified(), 3);
        assert_eq!(b.num_x(), 3);
        assert_eq!(b.num_specified() + b.num_x(), b.len());
    }

    #[test]
    fn structural_equality_ignores_how_x_was_set() {
        let mut a: InputBlock = "1111".parse().unwrap();
        a.set_trit(1, Trit::X);
        let b: InputBlock = "1X11".parse().unwrap();
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }
}
