//! The three-valued test-data symbol.

use std::fmt;

use crate::error::ParseTritError;

/// A single test-data symbol: logic `0`, logic `1`, or the don't-care `X`.
///
/// `X` positions may be set to either logic value without violating the fault
/// coverage targets of the test set (paper, Section 2). The same three-valued
/// alphabet is used for matching-vector positions, where the third value is
/// written `U` ("unspecified"); [`Trit::to_char_mv`] renders that spelling.
///
/// # Example
///
/// ```
/// use evotc_bits::Trit;
///
/// let t: Trit = 'X'.try_into().unwrap();
/// assert!(t.is_x());
/// assert_eq!(Trit::One.to_char(), '1');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Trit {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Don't-care (test data) / unspecified (matching vectors).
    #[default]
    X,
}

impl Trit {
    /// All three symbols, in `{0, 1, X}` order.
    pub const ALL: [Trit; 3] = [Trit::Zero, Trit::One, Trit::X];

    /// Returns `true` if the symbol is the don't-care `X`.
    #[inline]
    pub fn is_x(self) -> bool {
        matches!(self, Trit::X)
    }

    /// Returns `true` if the symbol is a specified logic value (`0` or `1`).
    #[inline]
    pub fn is_specified(self) -> bool {
        !self.is_x()
    }

    /// Converts a specified symbol to its logic value.
    ///
    /// Returns `None` for [`Trit::X`].
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// Creates a specified symbol from a logic value.
    #[inline]
    pub fn from_bool(value: bool) -> Self {
        if value {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Two symbols *match* if no conflict `0/1` or `1/0` exists; `X` matches
    /// everything (paper, Section 2, matching-vector definition).
    #[inline]
    pub fn matches(self, other: Trit) -> bool {
        !matches!(
            (self, other),
            (Trit::Zero, Trit::One) | (Trit::One, Trit::Zero)
        )
    }

    /// Renders the symbol using the test-data spelling `0`/`1`/`X`.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Trit::Zero => '0',
            Trit::One => '1',
            Trit::X => 'X',
        }
    }

    /// Renders the symbol using the matching-vector spelling `0`/`1`/`U`.
    #[inline]
    pub fn to_char_mv(self) -> char {
        match self {
            Trit::X => 'U',
            other => other.to_char(),
        }
    }

    /// Maps a gene index (`0`, `1`, `2`) to a symbol; used by the EA genome,
    /// which is a string over a three-letter alphabet (paper, Section 3.1).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    #[inline]
    pub fn from_index(index: u8) -> Self {
        match index {
            0 => Trit::Zero,
            1 => Trit::One,
            2 => Trit::X,
            _ => panic!("trit index out of range: {index}"),
        }
    }

    /// Inverse of [`Trit::from_index`].
    #[inline]
    pub fn index(self) -> u8 {
        match self {
            Trit::Zero => 0,
            Trit::One => 1,
            Trit::X => 2,
        }
    }
}

impl TryFrom<char> for Trit {
    type Error = ParseTritError;

    /// Accepts `0`, `1`, and any of `X`, `x`, `U`, `u`, `-` for don't-care.
    fn try_from(c: char) -> Result<Self, Self::Error> {
        match c {
            '0' => Ok(Trit::Zero),
            '1' => Ok(Trit::One),
            'X' | 'x' | 'U' | 'u' | '-' => Ok(Trit::X),
            other => Err(ParseTritError { found: other }),
        }
    }
}

impl From<bool> for Trit {
    fn from(value: bool) -> Self {
        Trit::from_bool(value)
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Trit::Zero => "0",
            Trit::One => "1",
            Trit::X => "X",
        })
    }
}

/// Parses a string of trit characters.
///
/// # Errors
///
/// Returns [`ParseTritError`] on the first character outside
/// `{0,1,X,x,U,u,-}`.
///
/// # Example
///
/// ```
/// use evotc_bits::Trit;
///
/// let v = evotc_bits::parse_trits("10X").unwrap();
/// assert_eq!(v, vec![Trit::One, Trit::Zero, Trit::X]);
/// ```
pub fn parse_trits(s: &str) -> Result<Vec<Trit>, ParseTritError> {
    s.chars().map(Trit::try_from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_spellings() {
        for (c, t) in [
            ('0', Trit::Zero),
            ('1', Trit::One),
            ('X', Trit::X),
            ('x', Trit::X),
            ('U', Trit::X),
            ('u', Trit::X),
            ('-', Trit::X),
        ] {
            assert_eq!(Trit::try_from(c).unwrap(), t);
        }
        assert!(Trit::try_from('2').is_err());
        assert!(Trit::try_from('?').is_err());
    }

    #[test]
    fn match_truth_table() {
        use Trit::*;
        // 1 matches 1, 0 matches 0, X/U match arbitrary values (paper §2).
        let expected = [
            ((Zero, Zero), true),
            ((Zero, One), false),
            ((Zero, X), true),
            ((One, Zero), false),
            ((One, One), true),
            ((One, X), true),
            ((X, Zero), true),
            ((X, One), true),
            ((X, X), true),
        ];
        for ((a, b), want) in expected {
            assert_eq!(a.matches(b), want, "{a:?} vs {b:?}");
            assert_eq!(b.matches(a), want, "matching must be symmetric");
        }
    }

    #[test]
    fn index_round_trip() {
        for t in Trit::ALL {
            assert_eq!(Trit::from_index(t.index()), t);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_out_of_range() {
        let _ = Trit::from_index(3);
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Trit::from_bool(true).to_bool(), Some(true));
        assert_eq!(Trit::from_bool(false).to_bool(), Some(false));
        assert_eq!(Trit::X.to_bool(), None);
        assert_eq!(Trit::from(true), Trit::One);
    }

    #[test]
    fn display_spellings() {
        assert_eq!(Trit::X.to_string(), "X");
        assert_eq!(Trit::X.to_char_mv(), 'U');
        assert_eq!(Trit::Zero.to_char_mv(), '0');
    }

    #[test]
    fn parse_trits_reports_offender() {
        let err = parse_trits("01q").unwrap_err();
        assert_eq!(err.found, 'q');
        assert!(err.to_string().contains('q'));
    }
}
