//! Bit-sliced (column-major) views of a block histogram.

use crate::block::InputBlock;
use crate::histogram::BlockHistogram;

/// A column-major transposition of a [`BlockHistogram`]: for every trit
/// position `j` of the block, the *care* and *value* bits of all distinct
/// blocks are packed into `u64` words, one block per bit.
///
/// Where an [`InputBlock`] packs its `K` positions into one word (row-major),
/// the sliced layout packs 64 *blocks* into one word per position
/// (column-major), pre-resolved into per-position *conflict sets*. A
/// matching vector is then matched against 64 distinct blocks with one word
/// operation per *specified* MV position — the inner loop of the EA fitness
/// kernel:
///
/// ```text
/// mismatch |= conflict_col[j][mv_value[j]]   // zeros[j] or ones[j]
/// ```
///
/// The transposition is built once per run (per histogram) and shared
/// read-only by every evaluation and worker thread.
///
/// # Example
///
/// ```
/// use evotc_bits::{BlockHistogram, SlicedHistogram, TestSet, TestSetString};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TestSet::parse(&["1010", "1010", "0101"])?;
/// let hist = BlockHistogram::from_string(&TestSetString::new(&set, 4));
/// let sliced = SlicedHistogram::from_histogram(&hist);
/// assert_eq!(sliced.num_distinct(), 2);
/// assert_eq!(sliced.counts(), &[2, 1]); // histogram order
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicedHistogram {
    k: usize,
    num_distinct: usize,
    /// Words per column: `ceil(num_distinct / 64)`.
    words: usize,
    /// `k * words` words; column `j` occupies `ones[j*words .. (j+1)*words]`.
    /// Bit `d % 64` of word `d / 64` is set iff distinct block `d` holds a
    /// *specified `1`* at position `j` — i.e. the blocks conflicting with an
    /// MV that says `0` there. Bits at and above `num_distinct` are zero.
    ones: Vec<u64>,
    /// Same layout: blocks holding a *specified `0`* at position `j` — the
    /// blocks conflicting with an MV that says `1` there.
    zeros: Vec<u64>,
    /// Multiplicity of each distinct block, in histogram order.
    counts: Vec<u64>,
    /// Care plane of each distinct block (row-major), in histogram order.
    bcare: Vec<u64>,
    /// Value plane of each distinct block (row-major), in histogram order.
    bvalue: Vec<u64>,
}

impl SlicedHistogram {
    /// Transposes a histogram into bit planes. Distinct-block index `d`
    /// follows the histogram's (deterministic) entry order.
    ///
    /// The columns are stored pre-resolved as *conflict sets* (`ones[j]` =
    /// blocks specified `1` at `j`, `zeros[j]` = blocks specified `0`), so
    /// the matching inner loop is a single load + OR per word instead of
    /// recombining care/value planes on every evaluation.
    pub fn from_histogram(histogram: &BlockHistogram) -> Self {
        let k = histogram.block_len();
        let n = histogram.num_distinct();
        let words = n.div_ceil(64);
        let mut ones = vec![0u64; k * words];
        let mut zeros = vec![0u64; k * words];
        let mut counts = Vec::with_capacity(n);
        let mut bcare = Vec::with_capacity(n);
        let mut bvalue = Vec::with_capacity(n);
        for (d, &(block, count)) in histogram.iter().enumerate() {
            let (w, b) = (d / 64, d % 64);
            let care_plane = block.care_plane();
            let value_plane = block.value_plane();
            bcare.push(care_plane);
            bvalue.push(value_plane);
            for j in 0..k {
                let care = (care_plane >> j) & 1;
                let value = (value_plane >> j) & 1;
                ones[j * words + w] |= (care & value) << b;
                zeros[j * words + w] |= (care & !value & 1) << b;
            }
            counts.push(count);
        }
        SlicedHistogram {
            k,
            num_distinct: n,
            words,
            ones,
            zeros,
            counts,
            bcare,
            bvalue,
        }
    }

    /// Block length `K`.
    #[inline]
    pub fn block_len(&self) -> usize {
        self.k
    }

    /// Number of distinct blocks (bits used per column).
    #[inline]
    pub fn num_distinct(&self) -> usize {
        self.num_distinct
    }

    /// Words per column (`ceil(num_distinct / 64)`) — the length callers
    /// must size their mismatch/uncovered bitset buffers to.
    #[inline]
    pub fn words_per_column(&self) -> usize {
        self.words
    }

    /// Multiplicities in histogram order; `counts()[d]` belongs to bit
    /// `d % 64` of word `d / 64` in every column.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// A word whose low `num_distinct % 64` bits are set — the mask of valid
    /// bits in the *last* word of a column (all ones when the count is a
    /// multiple of 64). Returns `0` for an empty histogram.
    #[inline]
    pub fn last_word_mask(&self) -> u64 {
        match self.num_distinct % 64 {
            0 if self.num_distinct == 0 => 0,
            0 => u64::MAX,
            r => (1u64 << r) - 1,
        }
    }

    /// The pre-resolved conflict plane of one position: the bitset of
    /// distinct blocks that conflict with a matching vector specifying logic
    /// value `value_bit` at position `j` (an MV saying `1` conflicts with
    /// the blocks specified `0` there, and vice versa).
    ///
    /// This is the primitive behind [`SlicedHistogram::accumulate_mismatch`],
    /// exposed so incremental evaluators can patch a single MV's match set
    /// with a handful of word operations instead of rescanning the whole
    /// histogram.
    ///
    /// # Panics
    ///
    /// Panics if `j >= block_len()`.
    #[inline]
    pub fn conflict_column(&self, j: usize, value_bit: bool) -> &[u64] {
        assert!(j < self.k, "position {j} out of range {}", self.k);
        let table = if value_bit { &self.zeros } else { &self.ones };
        &table[j * self.words..(j + 1) * self.words]
    }

    /// ORs into `mismatch` the set of distinct blocks that **conflict** with
    /// a matching vector given by its raw planes (`spec` bit `j` set means
    /// position `j` is specified with logic value `value` bit `j`).
    ///
    /// A block conflicts iff at some specified MV position it cares and holds
    /// the opposite value. Blocks whose bit stays clear are matched by the
    /// MV. The cost is one pass of `words_per_column()` word operations per
    /// *specified* position — 64 blocks per word op.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `mismatch.len() != words_per_column()`.
    #[inline]
    pub fn accumulate_mismatch(&self, spec: u64, value: u64, mismatch: &mut [u64]) {
        debug_assert_eq!(mismatch.len(), self.words, "mismatch buffer length");
        let mut remaining = spec;
        while remaining != 0 {
            let j = remaining.trailing_zeros() as usize;
            remaining &= remaining - 1;
            let column = self.conflict_column(j, (value >> j) & 1 == 1);
            for (m, &c) in mismatch.iter_mut().zip(column) {
                *m |= c;
            }
        }
    }

    /// Batched form of [`SlicedHistogram::accumulate_mismatch`]: computes the
    /// conflict bitset of several matching vectors in one call, writing the
    /// mismatch plane of `planes[t]` into
    /// `mismatch[t * words_per_column() .. (t + 1) * words_per_column()]`.
    ///
    /// The output slices are fully overwritten (no OR-accumulation across
    /// calls, unlike the single-MV form), so callers need no clearing pass.
    /// Incremental evaluators use this to resolve every MV chunk a
    /// crossover/inversion window touched with one pass over the conflict
    /// planes per chunk, keeping the column loads hot in cache between
    /// consecutive chunks.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `mismatch` is not exactly
    /// `planes.len() * words_per_column()` words long.
    pub fn accumulate_mismatch_batch(&self, planes: &[(u64, u64)], mismatch: &mut [u64]) {
        debug_assert_eq!(
            mismatch.len(),
            planes.len() * self.words,
            "batched mismatch buffer length"
        );
        for (&(spec, value), out) in planes.iter().zip(mismatch.chunks_exact_mut(self.words)) {
            out.iter_mut().for_each(|w| *w = 0);
            self.accumulate_mismatch(spec, value, out);
        }
    }

    /// The row-major `(care, value)` planes of distinct block `d` — two
    /// array loads, for hot paths that match individual blocks against MV
    /// planes (the incremental evaluator's orphan re-flow).
    ///
    /// # Panics
    ///
    /// Panics if `d >= num_distinct()` (slice bounds).
    #[inline]
    pub fn block_planes(&self, d: usize) -> (u64, u64) {
        (self.bcare[d], self.bvalue[d])
    }

    /// Reconstructs distinct block `d` from the columns (for tests and
    /// debugging; the kernel never needs it).
    ///
    /// # Panics
    ///
    /// Panics if `d >= num_distinct()`.
    pub fn block(&self, d: usize) -> InputBlock {
        assert!(d < self.num_distinct, "block {d} out of range");
        let (w, b) = (d / 64, d % 64);
        let mut care_plane = 0u64;
        let mut value_plane = 0u64;
        for j in 0..self.k {
            let one = (self.ones[j * self.words + w] >> b) & 1;
            let zero = (self.zeros[j * self.words + w] >> b) & 1;
            care_plane |= (one | zero) << j;
            value_plane |= one << j;
        }
        InputBlock::from_planes(self.k, care_plane, value_plane).expect("k is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_set::{TestSet, TestSetString};

    fn sliced(rows: &[&str], k: usize) -> (BlockHistogram, SlicedHistogram) {
        let set = TestSet::parse(rows).unwrap();
        let hist = BlockHistogram::from_string(&TestSetString::new(&set, k));
        let s = SlicedHistogram::from_histogram(&hist);
        (hist, s)
    }

    #[test]
    fn round_trips_blocks_and_counts() {
        let (hist, s) = sliced(&["110100XX", "110000XX", "110100XX"], 8);
        assert_eq!(s.num_distinct(), hist.num_distinct());
        for (d, &(block, count)) in hist.iter().enumerate() {
            assert_eq!(s.block(d), block, "block {d}");
            assert_eq!(s.counts()[d], count, "count {d}");
        }
    }

    #[test]
    fn mismatch_agrees_with_row_major_matching() {
        let (hist, s) = sliced(&["1101", "1100", "0000", "1X01", "0X10"], 4);
        // Try every MV over a few spec/value combinations.
        for spec in 0..16u64 {
            for value in 0..16u64 {
                let value = value & spec;
                let mut mismatch = vec![0u64; s.words_per_column()];
                s.accumulate_mismatch(spec, value, &mut mismatch);
                for (d, &(block, _)) in hist.iter().enumerate() {
                    let row_major = spec & block.care_plane() & (value ^ block.value_plane()) == 0;
                    let sliced_match = (mismatch[d / 64] >> (d % 64)) & 1 == 0;
                    assert_eq!(
                        sliced_match, row_major,
                        "spec={spec:04b} value={value:04b} block {block}"
                    );
                }
            }
        }
    }

    #[test]
    fn mismatch_accumulates_across_calls() {
        let (_, s) = sliced(&["1111", "0000"], 4);
        let mut mismatch = vec![0u64; s.words_per_column()];
        // First MV 1111 mismatches 0000; second MV 0000 mismatches 1111.
        s.accumulate_mismatch(0b1111, 0b1111, &mut mismatch);
        let after_first = mismatch.clone();
        s.accumulate_mismatch(0b1111, 0b0000, &mut mismatch);
        assert_ne!(after_first, mismatch);
        // Every block now conflicts with one of the two MVs.
        assert_eq!(mismatch[0] & s.last_word_mask(), s.last_word_mask());
    }

    #[test]
    fn last_word_mask_covers_partial_and_full_words() {
        let (_, s) = sliced(&["10", "01", "11"], 2);
        assert_eq!(s.last_word_mask(), 0b111);
        // 64 distinct blocks of K=6 -> exactly one full word.
        let rows: Vec<String> = (0..64u32).map(|i| format!("{i:06b}")).collect();
        let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
        let (_, full) = sliced(&refs, 6);
        assert_eq!(full.num_distinct(), 64);
        assert_eq!(full.words_per_column(), 1);
        assert_eq!(full.last_word_mask(), u64::MAX);
    }

    #[test]
    fn conflict_columns_compose_into_accumulate_mismatch() {
        let (_, s) = sliced(&["1101", "1100", "0000", "1X01", "0X10"], 4);
        for spec in 0..16u64 {
            for value in 0..16u64 {
                let value = value & spec;
                let mut via_accumulate = vec![0u64; s.words_per_column()];
                s.accumulate_mismatch(spec, value, &mut via_accumulate);
                let mut via_columns = vec![0u64; s.words_per_column()];
                for j in 0..4 {
                    if (spec >> j) & 1 == 1 {
                        for (m, &c) in via_columns
                            .iter_mut()
                            .zip(s.conflict_column(j, (value >> j) & 1 == 1))
                        {
                            *m |= c;
                        }
                    }
                }
                assert_eq!(via_columns, via_accumulate, "spec={spec:04b}");
            }
        }
    }

    #[test]
    fn batched_mismatch_matches_repeated_single_calls() {
        let (_, s) = sliced(&["1101", "1100", "0000", "1X01", "0X10"], 4);
        let planes: Vec<(u64, u64)> = (0..16u64)
            .flat_map(|spec| (0..16u64).map(move |value| (spec, value & spec)))
            .collect();
        let mut batched = vec![u64::MAX; planes.len() * s.words_per_column()];
        s.accumulate_mismatch_batch(&planes, &mut batched);
        for (t, &(spec, value)) in planes.iter().enumerate() {
            let mut single = vec![0u64; s.words_per_column()];
            s.accumulate_mismatch(spec, value, &mut single);
            let w = s.words_per_column();
            assert_eq!(&batched[t * w..(t + 1) * w], &single[..], "plane {t}");
        }
        // An empty batch is a no-op on an empty buffer.
        s.accumulate_mismatch_batch(&[], &mut []);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn conflict_column_rejects_out_of_range_positions() {
        let (_, s) = sliced(&["10", "01"], 2);
        let _ = s.conflict_column(2, false);
    }

    #[test]
    fn all_u_mv_mismatches_nothing() {
        let (_, s) = sliced(&["1X0X", "0101", "1111"], 4);
        let mut mismatch = vec![0u64; s.words_per_column()];
        s.accumulate_mismatch(0, 0, &mut mismatch);
        assert!(mismatch.iter().all(|&w| w == 0));
    }
}
