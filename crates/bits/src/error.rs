//! Error types for the test-data model.

use std::error::Error;
use std::fmt;

/// A character outside the trit alphabet was encountered while parsing.
///
/// # Example
///
/// ```
/// use evotc_bits::Trit;
///
/// let err = Trit::try_from('7').unwrap_err();
/// assert_eq!(err.found, '7');
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseTritError {
    /// The offending character.
    pub found: char,
}

impl fmt::Display for ParseTritError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid trit character `{}` (expected one of 0, 1, X, U, -)",
            self.found
        )
    }
}

impl Error for ParseTritError {}

/// Patterns of different widths were mixed in a single test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthMismatchError {
    /// Width expected by the collection.
    pub expected: usize,
    /// Width of the offending pattern.
    pub found: usize,
}

impl fmt::Display for WidthMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "test pattern width {} does not match test set width {}",
            self.found, self.expected
        )
    }
}

impl Error for WidthMismatchError {}

/// A block length outside `1..=64` was requested.
///
/// Input blocks are packed into single machine words, so the supported block
/// length `K` is capped at [`crate::MAX_BLOCK_LEN`]. The paper's experiments
/// use `K ∈ {6, 8, 12}`, far below the cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLenError {
    /// The requested block length.
    pub requested: usize,
}

impl fmt::Display for BlockLenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block length {} is outside the supported range 1..=64",
            self.requested
        )
    }
}

impl Error for BlockLenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = ParseTritError { found: 'z' };
        assert!(e.to_string().starts_with("invalid trit"));
        let e = WidthMismatchError {
            expected: 4,
            found: 7,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('7'));
        let e = BlockLenError { requested: 65 };
        assert!(e.to_string().contains("65"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ParseTritError>();
        assert_err::<WidthMismatchError>();
        assert_err::<BlockLenError>();
    }
}
