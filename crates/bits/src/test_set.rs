//! Test sets and the flattened test-set string.

use std::fmt;

use crate::block::InputBlock;
use crate::error::{BlockLenError, ParseTritError, WidthMismatchError};
use crate::pattern::TestPattern;
use crate::trit::Trit;

/// An ordered collection of equally wide test patterns.
///
/// Corresponds to the paper's `tp^(1) … tp^(T)` over `n` circuit inputs
/// (Section 2). Code-based compression never reorders or augments the set —
/// this type deliberately has no sorting or deduplication operations.
///
/// # Example
///
/// ```
/// use evotc_bits::TestSet;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TestSet::parse(&["10X1", "0XX0", "111X"])?;
/// assert_eq!(set.num_patterns(), 3);
/// assert_eq!(set.width(), 4);
/// assert_eq!(set.total_bits(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestSet {
    width: usize,
    patterns: Vec<TestPattern>,
}

impl TestSet {
    /// Creates an empty test set for circuits with `width` inputs.
    pub fn new(width: usize) -> Self {
        TestSet {
            width,
            patterns: Vec::new(),
        }
    }

    /// Parses a test set from one string per pattern.
    ///
    /// # Errors
    ///
    /// Returns an error if any character is not a trit or the rows have
    /// inconsistent widths.
    pub fn parse<S: AsRef<str>>(rows: &[S]) -> Result<Self, ParseTestSetError> {
        let mut set: Option<TestSet> = None;
        for row in rows {
            let p: TestPattern = row.as_ref().parse().map_err(ParseTestSetError::Trit)?;
            match &mut set {
                None => {
                    let mut s = TestSet::new(p.width());
                    s.push(p).expect("first row always matches its own width");
                    set = Some(s);
                }
                Some(s) => s.push(p).map_err(ParseTestSetError::Width)?,
            }
        }
        Ok(set.unwrap_or_default())
    }

    /// Appends a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`WidthMismatchError`] if the pattern width differs from the
    /// set width.
    pub fn push(&mut self, pattern: TestPattern) -> Result<(), WidthMismatchError> {
        if pattern.width() != self.width {
            return Err(WidthMismatchError {
                expected: self.width,
                found: pattern.width(),
            });
        }
        self.patterns.push(pattern);
        Ok(())
    }

    /// Pattern width `n` (number of circuit inputs).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of patterns `T`.
    #[inline]
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the set holds no patterns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Total number of bit positions `T · n` — the uncompressed test-data
    /// volume against which compression rates are computed.
    #[inline]
    pub fn total_bits(&self) -> usize {
        self.width * self.patterns.len()
    }

    /// The patterns, in application order.
    #[inline]
    pub fn patterns(&self) -> &[TestPattern] {
        &self.patterns
    }

    /// Iterates over the patterns.
    pub fn iter(&self) -> std::slice::Iter<'_, TestPattern> {
        self.patterns.iter()
    }

    /// Fraction of positions that are don't-care, in `[0, 1]`.
    pub fn x_density(&self) -> f64 {
        if self.total_bits() == 0 {
            return 0.0;
        }
        let x: usize = self.patterns.iter().map(TestPattern::num_x).sum();
        x as f64 / self.total_bits() as f64
    }

    /// Checks that `other` refines `self`: every position specified in `self`
    /// carries the same value in `other`. Used to verify that decompression
    /// reproduced the encoded test set (possibly with don't-cares filled).
    pub fn is_refined_by(&self, other: &TestSet) -> bool {
        self.width == other.width
            && self.patterns.len() == other.patterns.len()
            && self.patterns.iter().zip(&other.patterns).all(|(a, b)| {
                (0..self.width).all(|j| match a.trit(j) {
                    Trit::X => true,
                    t => other_matches(b.trit(j), t),
                })
            })
    }
}

fn other_matches(got: Trit, want: Trit) -> bool {
    got == want
}

impl FromIterator<TestPattern> for TestSet {
    /// Collects patterns into a set.
    ///
    /// # Panics
    ///
    /// Panics if the patterns have inconsistent widths; use [`TestSet::push`]
    /// for fallible construction.
    fn from_iter<I: IntoIterator<Item = TestPattern>>(iter: I) -> Self {
        let mut set: Option<TestSet> = None;
        for p in iter {
            match &mut set {
                None => {
                    let mut s = TestSet::new(p.width());
                    s.push(p).expect("first row always matches its own width");
                    set = Some(s);
                }
                Some(s) => s.push(p).expect("inconsistent pattern widths"),
            }
        }
        set.unwrap_or_default()
    }
}

impl<'a> IntoIterator for &'a TestSet {
    type Item = &'a TestPattern;
    type IntoIter = std::slice::Iter<'a, TestPattern>;

    fn into_iter(self) -> Self::IntoIter {
        self.patterns.iter()
    }
}

impl fmt::Display for TestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.patterns {
            writeln!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`TestSet`] from text rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseTestSetError {
    /// A character outside the trit alphabet.
    Trit(ParseTritError),
    /// Rows of different widths.
    Width(WidthMismatchError),
}

impl fmt::Display for ParseTestSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTestSetError::Trit(e) => e.fmt(f),
            ParseTestSetError::Width(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ParseTestSetError {}

/// The test set flattened into one long string `t_1 … t_{T·n}` and padded
/// with `X` to a multiple of the block length `K` (paper, Section 2).
///
/// # Example
///
/// ```
/// use evotc_bits::{TestSet, TestSetString};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let set = TestSet::parse(&["10X1", "0XX0"])?; // 8 bits
/// let s = TestSetString::new(&set, 3);          // padded to 9
/// assert_eq!(s.num_blocks(), 3);
/// assert_eq!(s.block(2).to_string(), "X0X");    // last bit is padding
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSetString {
    k: usize,
    /// Unpadded length `T · n`.
    payload_bits: usize,
    blocks: Vec<InputBlock>,
}

impl TestSetString {
    /// Flattens `set` and partitions it into blocks of length `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is `0` or exceeds [`crate::MAX_BLOCK_LEN`]; use
    /// [`TestSetString::try_new`] for fallible construction.
    pub fn new(set: &TestSet, k: usize) -> Self {
        Self::try_new(set, k).expect("block length out of range")
    }

    /// Fallible variant of [`TestSetString::new`].
    ///
    /// # Errors
    ///
    /// Returns [`BlockLenError`] if `k` is `0` or exceeds
    /// [`crate::MAX_BLOCK_LEN`].
    pub fn try_new(set: &TestSet, k: usize) -> Result<Self, BlockLenError> {
        if k == 0 || k > crate::block::MAX_BLOCK_LEN {
            return Err(BlockLenError { requested: k });
        }
        let total = set.total_bits();
        let padded = total.div_ceil(k) * k;
        let mut blocks = Vec::with_capacity(padded / k);
        let mut current = InputBlock::all_x(k).expect("validated above");
        let mut fill = 0usize;
        for pattern in set.iter() {
            for t in pattern.iter() {
                current.set_trit(fill, t);
                fill += 1;
                if fill == k {
                    blocks.push(current);
                    current = InputBlock::all_x(k).expect("validated above");
                    fill = 0;
                }
            }
        }
        if fill > 0 {
            // trailing block padded with X
            blocks.push(current);
        }
        Ok(TestSetString {
            k,
            payload_bits: total,
            blocks,
        })
    }

    /// Block length `K`.
    #[inline]
    pub fn block_len(&self) -> usize {
        self.k
    }

    /// Number of input blocks `T·n / K` (after padding).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if there are no blocks (empty test set).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Unpadded length `T · n` of the original string.
    #[inline]
    pub fn payload_bits(&self) -> usize {
        self.payload_bits
    }

    /// Padded length (a multiple of `K`).
    #[inline]
    pub fn padded_bits(&self) -> usize {
        self.blocks.len() * self.k
    }

    /// The `j`-th input block (0-based; the paper indexes from 1).
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.num_blocks()`.
    #[inline]
    pub fn block(&self, j: usize) -> InputBlock {
        self.blocks[j]
    }

    /// All blocks in string order.
    #[inline]
    pub fn blocks(&self) -> &[InputBlock] {
        &self.blocks
    }

    /// Iterates over the blocks in string order.
    pub fn iter(&self) -> std::slice::Iter<'_, InputBlock> {
        self.blocks.iter()
    }

    /// Reassembles a fully specified block sequence back into a [`TestSet`]
    /// of the given width (used after decompression). The sequence must
    /// contain at least `payload_bits` bits; padding is discarded.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `blocks` is shorter than the payload.
    pub fn reassemble(
        blocks: &[InputBlock],
        k: usize,
        width: usize,
        payload_bits: usize,
    ) -> TestSet {
        assert!(width > 0, "pattern width must be positive");
        assert!(
            blocks.len() * k >= payload_bits,
            "not enough decoded bits: {} < {payload_bits}",
            blocks.len() * k
        );
        assert_eq!(payload_bits % width, 0, "payload must be whole patterns");
        let mut set = TestSet::new(width);
        let mut pattern = TestPattern::all_x(width);
        let mut pos = 0usize;
        let mut emitted = 0usize;
        'outer: for b in blocks {
            for j in 0..k {
                if emitted == payload_bits {
                    break 'outer;
                }
                pattern.set_trit(pos, b.trit(j));
                pos += 1;
                emitted += 1;
                if pos == width {
                    set.push(std::mem::replace(&mut pattern, TestPattern::all_x(width)))
                        .expect("width is constant");
                    pos = 0;
                }
            }
        }
        set
    }
}

impl<'a> IntoIterator for &'a TestSetString {
    type Item = &'a InputBlock;
    type IntoIter = std::slice::Iter<'a, InputBlock>;

    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_ragged_rows() {
        let err = TestSet::parse(&["101", "1011"]).unwrap_err();
        assert!(matches!(err, ParseTestSetError::Width(_)));
    }

    #[test]
    fn empty_set_is_fine() {
        let set = TestSet::parse::<&str>(&[]).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.total_bits(), 0);
        let s = TestSetString::new(&set, 8);
        assert_eq!(s.num_blocks(), 0);
    }

    #[test]
    fn padding_fills_with_x() {
        let set = TestSet::parse(&["10110"]).unwrap(); // 5 bits
        let s = TestSetString::new(&set, 4); // padded to 8
        assert_eq!(s.num_blocks(), 2);
        assert_eq!(s.payload_bits(), 5);
        assert_eq!(s.padded_bits(), 8);
        assert_eq!(s.block(0).to_string(), "1011");
        assert_eq!(s.block(1).to_string(), "0XXX");
    }

    #[test]
    fn exact_multiple_needs_no_padding() {
        let set = TestSet::parse(&["101101"]).unwrap();
        let s = TestSetString::new(&set, 3);
        assert_eq!(s.num_blocks(), 2);
        assert_eq!(s.payload_bits(), s.padded_bits());
    }

    #[test]
    fn blocks_cross_pattern_boundaries() {
        // The string view concatenates patterns: block 1 spans both rows.
        let set = TestSet::parse(&["101", "011"]).unwrap();
        let s = TestSetString::new(&set, 2);
        let joined: String = s.iter().map(|b| b.to_string()).collect();
        assert_eq!(joined, "101011");
    }

    #[test]
    fn reassemble_round_trip() {
        let set = TestSet::parse(&["10110", "01011", "11100"]).unwrap();
        let s = TestSetString::new(&set, 4);
        let back = TestSetString::reassemble(s.blocks(), 4, 5, s.payload_bits());
        assert_eq!(back, set);
    }

    #[test]
    fn x_density_counts_dont_cares() {
        let set = TestSet::parse(&["1X", "XX"]).unwrap();
        assert!((set.x_density() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn refinement_accepts_filled_x() {
        let original = TestSet::parse(&["1X0"]).unwrap();
        let filled = TestSet::parse(&["110"]).unwrap();
        let wrong = TestSet::parse(&["010"]).unwrap();
        assert!(original.is_refined_by(&filled));
        assert!(original.is_refined_by(&original));
        assert!(!original.is_refined_by(&wrong));
    }

    #[test]
    fn try_new_rejects_bad_k() {
        let set = TestSet::parse(&["1010"]).unwrap();
        assert!(TestSetString::try_new(&set, 0).is_err());
        assert!(TestSetString::try_new(&set, 65).is_err());
    }
}
