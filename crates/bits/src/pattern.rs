//! Packed test patterns.

use std::fmt;

use crate::error::ParseTritError;
use crate::trit::Trit;

/// One test vector of `n` trits, stored as two bit planes.
///
/// Bit `j` of the *care* plane is set iff position `j` is specified; the
/// *value* plane holds the logic value of specified positions (and is kept
/// zero at don't-care positions, which makes equality and hashing structural).
///
/// # Example
///
/// ```
/// use evotc_bits::{TestPattern, Trit};
///
/// let p: TestPattern = "1X0".parse().unwrap();
/// assert_eq!(p.width(), 3);
/// assert_eq!(p.trit(0), Trit::One);
/// assert_eq!(p.trit(1), Trit::X);
/// assert_eq!(p.num_specified(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TestPattern {
    width: usize,
    care: Vec<u64>,
    value: Vec<u64>,
}

#[inline]
fn words_for(width: usize) -> usize {
    width.div_ceil(64)
}

impl TestPattern {
    /// Creates an all-`X` pattern of the given width.
    pub fn all_x(width: usize) -> Self {
        TestPattern {
            width,
            care: vec![0; words_for(width)],
            value: vec![0; words_for(width)],
        }
    }

    /// Creates a pattern from a slice of trits.
    pub fn from_trits(trits: &[Trit]) -> Self {
        let mut p = TestPattern::all_x(trits.len());
        for (j, &t) in trits.iter().enumerate() {
            p.set_trit(j, t);
        }
        p
    }

    /// Width (number of trit positions) of the pattern.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns `true` if the pattern has no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.width == 0
    }

    /// Reads the trit at position `j`, or `None` for out-of-range positions.
    ///
    /// This is the checked counterpart of [`TestPattern::trit`]: the
    /// unchecked accessor silently reads `Trit::X` past the width in release
    /// builds, which can mask real indexing bugs. Prefer `try_trit` (usually
    /// with `.expect(...)`) everywhere outside the fitness/encoding hot
    /// paths.
    #[inline]
    pub fn try_trit(&self, j: usize) -> Option<Trit> {
        if j < self.width {
            Some(self.trit(j))
        } else {
            None
        }
    }

    /// Reads the trit at position `j`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `j >= self.width()`; release builds take a
    /// safe fallback and return [`Trit::X`] for out-of-range positions. The
    /// accessor sits on the workload-construction hot path, so the bounds
    /// check is a `debug_assert!` — callers off that path should use
    /// [`TestPattern::try_trit`] instead.
    #[inline]
    pub fn trit(&self, j: usize) -> Trit {
        debug_assert!(j < self.width, "position {j} out of range {}", self.width);
        if j >= self.width {
            return Trit::X;
        }
        let (w, b) = (j / 64, j % 64);
        if (self.care[w] >> b) & 1 == 0 {
            Trit::X
        } else if (self.value[w] >> b) & 1 == 1 {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Writes the trit at position `j`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `j >= self.width()`; release builds take a
    /// safe fallback and ignore out-of-range writes (see [`TestPattern::trit`]).
    #[inline]
    pub fn set_trit(&mut self, j: usize, t: Trit) {
        debug_assert!(j < self.width, "position {j} out of range {}", self.width);
        if j >= self.width {
            return;
        }
        let (w, b) = (j / 64, j % 64);
        match t {
            Trit::X => {
                self.care[w] &= !(1 << b);
                self.value[w] &= !(1 << b);
            }
            Trit::Zero => {
                self.care[w] |= 1 << b;
                self.value[w] &= !(1 << b);
            }
            Trit::One => {
                self.care[w] |= 1 << b;
                self.value[w] |= 1 << b;
            }
        }
    }

    /// Number of specified (non-`X`) positions.
    pub fn num_specified(&self) -> usize {
        self.care.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of don't-care positions.
    pub fn num_x(&self) -> usize {
        self.width - self.num_specified()
    }

    /// Iterates over the trits in position order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            pattern: self,
            pos: 0,
        }
    }

    /// Returns `true` if `self` is compatible with `other` at every position
    /// (no `0`/`1` conflict), i.e. the two cubes intersect.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn compatible(&self, other: &TestPattern) -> bool {
        assert_eq!(self.width, other.width, "pattern widths differ");
        self.care
            .iter()
            .zip(&other.care)
            .zip(self.value.iter().zip(&other.value))
            .all(|((&ca, &cb), (&va, &vb))| ca & cb & (va ^ vb) == 0)
    }

    /// Fills every `X` with the given logic value, returning a fully
    /// specified pattern.
    pub fn fill_x(&self, value: bool) -> TestPattern {
        let mut out = self.clone();
        let full = words_for(self.width);
        for w in 0..full {
            let dont_care = !out.care[w] & Self::tail_mask(self.width, w);
            out.care[w] |= dont_care;
            if value {
                out.value[w] |= dont_care;
            }
        }
        out
    }

    #[inline]
    fn tail_mask(width: usize, word: usize) -> u64 {
        let bits_before = word * 64;
        let remaining = width.saturating_sub(bits_before);
        if remaining >= 64 {
            u64::MAX
        } else if remaining == 0 {
            0
        } else {
            (1u64 << remaining) - 1
        }
    }
}

impl std::str::FromStr for TestPattern {
    type Err = ParseTritError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trits = crate::trit::parse_trits(s)?;
        Ok(TestPattern::from_trits(&trits))
    }
}

impl fmt::Display for TestPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.iter() {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl FromIterator<Trit> for TestPattern {
    fn from_iter<I: IntoIterator<Item = Trit>>(iter: I) -> Self {
        let trits: Vec<Trit> = iter.into_iter().collect();
        TestPattern::from_trits(&trits)
    }
}

/// Iterator over the trits of a [`TestPattern`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    pattern: &'a TestPattern,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = Trit;

    fn next(&mut self) -> Option<Trit> {
        if self.pos < self.pattern.width {
            let t = self.pattern.trit(self.pos);
            self.pos += 1;
            Some(t)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.pattern.width - self.pos;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for s in ["", "0", "1", "X", "10X1XX01", "XXXXXXXXXXXXXXXXXXXXX"] {
            let p: TestPattern = s.parse().unwrap();
            assert_eq!(p.to_string(), s.replace(['x', 'u', '-'], "X"));
        }
    }

    #[test]
    fn wide_patterns_cross_word_boundary() {
        let s: String = (0..130)
            .map(|i| match i % 3 {
                0 => '1',
                1 => '0',
                _ => 'X',
            })
            .collect();
        let p: TestPattern = s.parse().unwrap();
        assert_eq!(p.width(), 130);
        assert_eq!(p.to_string(), s);
        assert_eq!(p.num_specified() + p.num_x(), 130);
    }

    #[test]
    fn set_trit_overwrites_cleanly() {
        let mut p = TestPattern::all_x(5);
        p.set_trit(2, Trit::One);
        assert_eq!(p.trit(2), Trit::One);
        p.set_trit(2, Trit::Zero);
        assert_eq!(p.trit(2), Trit::Zero);
        p.set_trit(2, Trit::X);
        assert_eq!(p.trit(2), Trit::X);
        // value plane must be zeroed at X so equality is structural
        assert_eq!(p, TestPattern::all_x(5));
    }

    #[test]
    fn compatibility_is_cube_intersection() {
        let a: TestPattern = "1X0X".parse().unwrap();
        let b: TestPattern = "110X".parse().unwrap();
        let c: TestPattern = "0X0X".parse().unwrap();
        assert!(a.compatible(&b));
        assert!(b.compatible(&a));
        assert!(!a.compatible(&c));
    }

    #[test]
    fn fill_x_specifies_everything() {
        let p: TestPattern = "1X0XX".parse().unwrap();
        let f0 = p.fill_x(false);
        let f1 = p.fill_x(true);
        assert_eq!(f0.to_string(), "10000");
        assert_eq!(f1.to_string(), "11011");
        assert_eq!(f0.num_x(), 0);
        assert_eq!(f1.num_x(), 0);
    }

    #[test]
    fn fill_x_does_not_touch_padding_bits() {
        // Width 70: the second word is partial; fill must not set bits past
        // the width, or equality with an independently built pattern breaks.
        let p = TestPattern::all_x(70);
        let f = p.fill_x(true);
        let q: TestPattern = "1".repeat(70).parse().unwrap();
        assert_eq!(f, q);
    }

    #[test]
    fn iterator_is_exact_size() {
        let p: TestPattern = "10X".parse().unwrap();
        let it = p.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![Trit::One, Trit::Zero, Trit::X]);
    }

    #[test]
    fn try_trit_is_checked() {
        let p: TestPattern = "10X".parse().unwrap();
        assert_eq!(p.try_trit(0), Some(Trit::One));
        assert_eq!(p.try_trit(2), Some(Trit::X));
        assert_eq!(p.try_trit(3), None);
        assert_eq!(TestPattern::all_x(0).try_trit(0), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn trit_bounds_checked_in_debug() {
        let p = TestPattern::all_x(3);
        let _ = p.trit(3);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn trit_out_of_range_falls_back_to_x_in_release() {
        let mut p = TestPattern::all_x(3);
        assert_eq!(p.trit(3), Trit::X);
        p.set_trit(3, Trit::One); // ignored, not a panic
        assert_eq!(p, TestPattern::all_x(3));
    }
}
