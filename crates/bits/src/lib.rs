//! Tri-state test-data model for code-based test compression.
//!
//! This crate provides the data substrate used throughout the `evotc`
//! workspace, mirroring Section 2 of Polian/Czutro/Becker, *Evolutionary
//! Optimization in Code-Based Test Compression* (DATE 2005):
//!
//! * [`Trit`] — a single test-data symbol from `{0, 1, X}` where `X` is a
//!   don't-care that may be filled with either logic value.
//! * [`TestPattern`] — one test vector of `n` trits, stored packed (two bit
//!   planes: *care* and *value*).
//! * [`TestSet`] — an ordered collection of equally wide patterns.
//! * [`TestSetString`] — the concatenation `t_1 t_2 … t_{T·n}` of a test set
//!   into one long string, padded with `X` up to a multiple of the block
//!   length `K` (paper, Section 2).
//! * [`InputBlock`] — a fixed-length (`K ≤ 64`) slice of the test-set string,
//!   packed into a `(care, value)` pair of machine words.
//! * [`BlockHistogram`] — distinct input blocks with multiplicities; covering
//!   and EA fitness are computed over the histogram, which is exact and much
//!   faster than scanning every block.
//! * [`SlicedHistogram`] — a column-major (bit-sliced) transposition of the
//!   histogram so one matching vector is matched against 64 distinct blocks
//!   per word operation; the substrate of the EA fitness kernel.
//! * [`BitWriter`] / [`BitReader`] — MSB-first bit streams for the compressed
//!   payload.
//!
//! # Example
//!
//! ```
//! use evotc_bits::{TestSet, TestSetString};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = TestSet::parse(&["10X1", "0XX0"])?;
//! let string = TestSetString::new(&set, 3);
//! assert_eq!(string.num_blocks(), 3); // 8 bits padded to 9, K = 3
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitstream;
mod block;
mod error;
mod histogram;
mod pattern;
mod sliced;
mod test_set;
mod trit;

pub use bitstream::{BitReader, BitWriter};
pub use block::{InputBlock, ParseBlockError, MAX_BLOCK_LEN};
pub use error::{BlockLenError, ParseTritError, WidthMismatchError};
pub use histogram::BlockHistogram;
pub use pattern::TestPattern;
pub use sliced::SlicedHistogram;
pub use test_set::{ParseTestSetError, TestSet, TestSetString};
pub use trit::{parse_trits, Trit};
