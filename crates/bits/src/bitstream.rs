//! MSB-first bit streams for compressed payloads.

use std::fmt;

/// Writes individual bits into a growable buffer, MSB-first within each byte.
///
/// The compressed test data is a concatenation of variable-length codewords
/// and fill bits, so a bit-granular writer is required; the MSB-first order
/// matches the serial order in which an on-chip decoder would consume bits
/// from the tester.
///
/// # Example
///
/// ```
/// use evotc_bits::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_bits(0b0110, 4);
/// assert_eq!(w.len(), 5);
/// let mut r = BitReader::new(w.as_bytes(), w.len());
/// assert_eq!(r.read_bit(), Some(true));
/// assert_eq!(r.read_bits(4), Some(0b0110));
/// assert_eq!(r.read_bit(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            len: 0,
        }
    }

    /// Number of bits written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no bits have been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        let byte = self.len / 8;
        if byte == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte] |= 0x80 >> (self.len % 8);
        }
        self.len += 1;
    }

    /// Appends the `n` low bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn write_bits(&mut self, value: u64, n: usize) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Appends every bit produced by the iterator.
    pub fn extend_bits<I: IntoIterator<Item = bool>>(&mut self, bits: I) {
        for b in bits {
            self.write_bit(b);
        }
    }

    /// The backing bytes (the final byte may be partially filled; unused low
    /// bits are zero).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the writer, returning `(bytes, bit_len)`.
    pub fn into_parts(self) -> (Vec<u8>, usize) {
        (self.bytes, self.len)
    }
}

impl fmt::Display for BitWriter {
    /// Renders the stream as a `0`/`1` string (for debugging and tests).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut r = BitReader::new(&self.bytes, self.len);
        while let Some(b) = r.read_bit() {
            write!(f, "{}", u8::from(b))?;
        }
        Ok(())
    }
}

impl Extend<bool> for BitWriter {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        self.extend_bits(iter);
    }
}

impl FromIterator<bool> for BitWriter {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut w = BitWriter::new();
        w.extend_bits(iter);
        w
    }
}

/// Reads bits MSB-first from a byte buffer produced by [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over the first `bit_len` bits of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short to hold `bit_len` bits.
    pub fn new(bytes: &'a [u8], bit_len: usize) -> Self {
        assert!(
            bytes.len() * 8 >= bit_len,
            "buffer holds {} bits, reader needs {bit_len}",
            bytes.len() * 8
        );
        BitReader {
            bytes,
            len: bit_len,
            pos: 0,
        }
    }

    /// Number of bits not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.len - self.pos
    }

    /// Current read position in bits.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one bit, or `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.len {
            return None;
        }
        let bit = (self.bytes[self.pos / 8] >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits into the low bits of a `u64` (MSB-first), or `None` if
    /// fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: usize) -> Option<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if self.remaining() < n {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit().expect("length checked"));
        }
        Some(v)
    }
}

impl Iterator for BitReader<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        self.read_bit()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for BitReader<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let w: BitWriter = pattern.into_iter().collect();
        assert_eq!(w.len(), 9);
        let got: Vec<bool> = BitReader::new(w.as_bytes(), w.len()).collect();
        assert_eq!(got, pattern);
    }

    #[test]
    fn multi_bit_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD, 16);
        w.write_bits(1, 1);
        let mut r = BitReader::new(w.as_bytes(), w.len());
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(16), Some(0xDEAD));
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn msb_first_byte_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1100_0001, 8);
        assert_eq!(w.as_bytes(), &[0b1100_0001]);
        let mut w = BitWriter::new();
        w.write_bit(true); // only one bit: must land in the MSB
        assert_eq!(w.as_bytes(), &[0b1000_0000]);
    }

    #[test]
    fn display_renders_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b0110, 4);
        assert_eq!(w.to_string(), "0110");
    }

    #[test]
    fn reading_past_end_is_none_not_panic() {
        let w = BitWriter::new();
        let mut r = BitReader::new(w.as_bytes(), w.len());
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(0), Some(0));
    }

    #[test]
    fn write_zero_bits_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 0);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer holds")]
    fn reader_validates_length() {
        let _ = BitReader::new(&[0u8], 9);
    }
}
