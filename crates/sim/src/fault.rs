//! The single stuck-at fault model.

use std::fmt;

use evotc_netlist::{GateKind, NetId, Netlist};

/// A single stuck-at fault on a net (the classic model behind the paper's
/// stuck-at test sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StuckAtFault {
    /// The faulty net.
    pub net: NetId,
    /// The stuck value (`false` = stuck-at-0).
    pub stuck_at: bool,
}

impl StuckAtFault {
    /// Creates a stuck-at-0 fault.
    pub fn sa0(net: NetId) -> Self {
        StuckAtFault {
            net,
            stuck_at: false,
        }
    }

    /// Creates a stuck-at-1 fault.
    pub fn sa1(net: NetId) -> Self {
        StuckAtFault {
            net,
            stuck_at: true,
        }
    }
}

impl fmt::Display for StuckAtFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/sa{}", self.net, u8::from(self.stuck_at))
    }
}

/// Enumerates both stuck-at faults on every net.
pub fn all_faults(netlist: &Netlist) -> Vec<StuckAtFault> {
    let mut out = Vec::with_capacity(2 * netlist.num_nodes());
    for id in netlist.node_ids() {
        out.push(StuckAtFault::sa0(id));
        out.push(StuckAtFault::sa1(id));
    }
    out
}

/// Structural equivalence collapsing.
///
/// Two classic rules shrink the fault list without losing coverage:
///
/// * The output faults of `BUF` are equivalent to the same faults at the
///   input; for `NOT` they are equivalent with inverted polarity. On
///   fanout-free chains only the chain head needs faults.
/// * For AND/NAND (OR/NOR), a stuck-at-controlling fault on any fanin is
///   equivalent to stuck-at-(gate output under controlling input) at the
///   output, so when the fanin is fanout-free its representative moves to
///   the gate output.
///
/// This implementation drops net faults that are equivalent to a fault on
/// the (single-fanout) driven gate, keeping the representative closest to
/// the outputs — typically collapsing 30–50 % of the list, enough to speed
/// up ATPG substantially while staying obviously sound.
pub fn collapse_faults(netlist: &Netlist) -> Vec<StuckAtFault> {
    let mut keep: Vec<StuckAtFault> = Vec::new();
    for id in netlist.node_ids() {
        for stuck_at in [false, true] {
            if is_collapsed_away(netlist, id, stuck_at) {
                continue;
            }
            keep.push(StuckAtFault { net: id, stuck_at });
        }
    }
    keep
}

/// A fault is dropped when it is equivalent to a fault on its unique fanout
/// gate (which is enumerated separately).
fn is_collapsed_away(netlist: &Netlist, net: NetId, stuck_at: bool) -> bool {
    if netlist.is_output(net) {
        return false; // output faults are always representatives
    }
    let fanouts = netlist.fanouts(net);
    if fanouts.len() != 1 {
        return false; // fanout stems need their own faults
    }
    let gate = fanouts[0];
    match netlist.kind(gate) {
        // BUF: input sa-v == output sa-v. NOT: input sa-v == output sa-!v.
        GateKind::Buf | GateKind::Not => true,
        // AND: input sa-0 == output sa-0; NAND: input sa-0 == output sa-1.
        GateKind::And | GateKind::Nand => !stuck_at,
        // OR: input sa-1 == output sa-1; NOR: input sa-1 == output sa-0.
        GateKind::Or | GateKind::Nor => stuck_at,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evotc_netlist::{iscas, parse_bench, GateKind, NetlistBuilder};

    #[test]
    fn all_faults_counts() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        assert_eq!(all_faults(&n).len(), 2 * n.num_nodes());
    }

    #[test]
    fn collapsing_shrinks_the_list() {
        let n = parse_bench(iscas::C17_BENCH).unwrap();
        let full = all_faults(&n).len();
        let collapsed = collapse_faults(&n).len();
        assert!(collapsed < full, "{collapsed} !< {full}");
        assert!(collapsed >= n.num_outputs() * 2);
    }

    #[test]
    fn inverter_chain_collapses_to_heads_and_tail() {
        // x -> NOT a -> NOT b(out): x faults collapse into a, a into b.
        let mut builder = NetlistBuilder::new("chain");
        let x = builder.input("x");
        let a = builder.gate("a", GateKind::Not, vec![x]).unwrap();
        let b = builder.gate("b", GateKind::Not, vec![a]).unwrap();
        builder.output(b);
        let n = builder.finish().unwrap();
        let collapsed = collapse_faults(&n);
        // only the output keeps faults
        assert_eq!(collapsed.len(), 2);
        assert!(collapsed.iter().all(|f| n.is_output(f.net)));
    }

    #[test]
    fn fanout_stems_keep_their_faults() {
        // x drives two gates: x faults must stay.
        let mut builder = NetlistBuilder::new("stem");
        let x = builder.input("x");
        let y = builder.input("y");
        let a = builder.gate("a", GateKind::And, vec![x, y]).unwrap();
        let o = builder.gate("o", GateKind::Or, vec![x, a]).unwrap();
        builder.output(o);
        let n = builder.finish().unwrap();
        let collapsed = collapse_faults(&n);
        assert!(collapsed.iter().any(|f| f.net == x));
    }

    #[test]
    fn and_gate_keeps_sa1_on_inputs() {
        let mut builder = NetlistBuilder::new("and");
        let x = builder.input("x");
        let y = builder.input("y");
        let a = builder.gate("a", GateKind::And, vec![x, y]).unwrap();
        builder.output(a);
        let n = builder.finish().unwrap();
        let collapsed = collapse_faults(&n);
        // x/sa0 collapses into a/sa0, x/sa1 must remain.
        assert!(!collapsed.contains(&StuckAtFault::sa0(x)));
        assert!(collapsed.contains(&StuckAtFault::sa1(x)));
    }

    #[test]
    fn display_formats() {
        let f = StuckAtFault::sa1(NetId(3));
        assert_eq!(f.to_string(), "n3/sa1");
    }
}
