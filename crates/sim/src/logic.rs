//! Three-valued gate evaluation.

use evotc_bits::Trit;
use evotc_netlist::GateKind;

/// Evaluates a gate over three-valued inputs with standard pessimistic `X`
/// semantics: the output is `X` unless the specified inputs force a value
/// (e.g. one `0` input forces an AND gate to `0` regardless of `X`s).
///
/// # Panics
///
/// Panics for [`GateKind::Input`] (inputs have no logic function), empty
/// input slices, and arity violations on `Buf`/`Not`.
///
/// # Example
///
/// ```
/// use evotc_bits::Trit;
/// use evotc_netlist::GateKind;
/// use evotc_sim::eval_gate;
///
/// assert_eq!(eval_gate(GateKind::And, &[Trit::Zero, Trit::X]), Trit::Zero);
/// assert_eq!(eval_gate(GateKind::And, &[Trit::One, Trit::X]), Trit::X);
/// ```
pub fn eval_gate(kind: GateKind, inputs: &[Trit]) -> Trit {
    assert!(!inputs.is_empty(), "gate must have at least one input");
    match kind {
        GateKind::Input => panic!("inputs have no logic function"),
        GateKind::Buf => {
            assert_eq!(inputs.len(), 1, "BUF takes one input");
            inputs[0]
        }
        GateKind::Not => {
            assert_eq!(inputs.len(), 1, "NOT takes one input");
            not(inputs[0])
        }
        GateKind::And => and_all(inputs),
        GateKind::Nand => not(and_all(inputs)),
        GateKind::Or => or_all(inputs),
        GateKind::Nor => not(or_all(inputs)),
        GateKind::Xor => xor_all(inputs),
        GateKind::Xnor => not(xor_all(inputs)),
    }
}

fn not(a: Trit) -> Trit {
    match a {
        Trit::Zero => Trit::One,
        Trit::One => Trit::Zero,
        Trit::X => Trit::X,
    }
}

fn and_all(inputs: &[Trit]) -> Trit {
    if inputs.contains(&Trit::Zero) {
        Trit::Zero
    } else if inputs.iter().all(|&t| t == Trit::One) {
        Trit::One
    } else {
        Trit::X
    }
}

fn or_all(inputs: &[Trit]) -> Trit {
    if inputs.contains(&Trit::One) {
        Trit::One
    } else if inputs.iter().all(|&t| t == Trit::Zero) {
        Trit::Zero
    } else {
        Trit::X
    }
}

fn xor_all(inputs: &[Trit]) -> Trit {
    let mut acc = Trit::Zero;
    for &t in inputs {
        acc = match (acc, t) {
            (Trit::X, _) | (_, Trit::X) => return Trit::X,
            (a, b) => Trit::from_bool(a.to_bool().expect("not X") ^ b.to_bool().expect("not X")),
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use Trit::{One, Zero, X};

    #[test]
    fn controlling_values_dominate_x() {
        assert_eq!(eval_gate(GateKind::And, &[Zero, X, X]), Zero);
        assert_eq!(eval_gate(GateKind::Nand, &[Zero, X]), One);
        assert_eq!(eval_gate(GateKind::Or, &[One, X]), One);
        assert_eq!(eval_gate(GateKind::Nor, &[One, X]), Zero);
    }

    #[test]
    fn x_propagates_when_undecided() {
        assert_eq!(eval_gate(GateKind::And, &[One, X]), X);
        assert_eq!(eval_gate(GateKind::Or, &[Zero, X]), X);
        assert_eq!(eval_gate(GateKind::Xor, &[One, X]), X);
        assert_eq!(eval_gate(GateKind::Not, &[X]), X);
    }

    #[test]
    fn fully_specified_matches_boolean() {
        use evotc_netlist::GateKind::*;
        for kind in [And, Nand, Or, Nor, Xor, Xnor] {
            for a in [false, true] {
                for b in [false, true] {
                    let expected = kind.eval_bool(&[a, b]);
                    let got = eval_gate(kind, &[Trit::from_bool(a), Trit::from_bool(b)]);
                    assert_eq!(got, Trit::from_bool(expected), "{kind} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn xor_parity_over_three_inputs() {
        assert_eq!(eval_gate(GateKind::Xor, &[One, One, One]), One);
        assert_eq!(eval_gate(GateKind::Xnor, &[One, One, Zero]), One);
    }
}
