//! Full-circuit three-valued simulation.

use evotc_bits::{TestPattern, Trit};
use evotc_netlist::{GateKind, NetId, Netlist};

use crate::logic::eval_gate;

/// Simulates a test pattern, returning the three-valued value of every net
/// (indexed by [`NetId::index`]).
///
/// # Panics
///
/// Panics if the pattern width differs from the circuit's input count.
///
/// # Example
///
/// See the [crate-level documentation](crate).
pub fn simulate(netlist: &Netlist, pattern: &TestPattern) -> Vec<Trit> {
    simulate_with_forced(netlist, pattern, &[])
}

/// Simulates with some nets *forced* to fixed values (fault injection:
/// a stuck-at-`v` fault forces its net to `v` regardless of the driver).
///
/// # Panics
///
/// Panics if the pattern width differs from the circuit's input count.
pub fn simulate_with_forced(
    netlist: &Netlist,
    pattern: &TestPattern,
    forced: &[(NetId, Trit)],
) -> Vec<Trit> {
    assert_eq!(
        pattern.width(),
        netlist.num_inputs(),
        "pattern width {} != inputs {}",
        pattern.width(),
        netlist.num_inputs()
    );
    let mut values = vec![Trit::X; netlist.num_nodes()];
    for (j, &input) in netlist.inputs().iter().enumerate() {
        values[input.index()] = pattern.try_trit(j).expect("width matches input count");
    }
    let mut fanin_buf: Vec<Trit> = Vec::with_capacity(8);
    let kinds = netlist.kinds();
    for id in netlist.node_ids() {
        let kind = kinds[id.index()];
        if kind != GateKind::Input {
            fanin_buf.clear();
            fanin_buf.extend(netlist.fanins(id).iter().map(|f| values[f.index()]));
            values[id.index()] = eval_gate(kind, &fanin_buf);
        }
        if let Some(&(_, v)) = forced.iter().find(|&&(net, _)| net == id) {
            values[id.index()] = v;
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use evotc_netlist::{iscas, parse_bench};

    fn c17() -> Netlist {
        parse_bench(iscas::C17_BENCH).unwrap()
    }

    fn outputs_of(netlist: &Netlist, pattern: &str) -> Vec<Trit> {
        let p: TestPattern = pattern.parse().unwrap();
        let values = simulate(netlist, &p);
        netlist
            .outputs()
            .iter()
            .map(|o| values[o.index()])
            .collect()
    }

    #[test]
    fn c17_known_vectors() {
        let n = c17();
        // inputs order: 1,2,3,6,7.
        // all zeros: 10=NAND(0,0)=1, 11=NAND(0,0)=1, 16=NAND(0,1)=1,
        // 19=NAND(1,0)=1, 22=NAND(1,1)=0, 23=NAND(1,1)=0
        assert_eq!(outputs_of(&n, "00000"), vec![Trit::Zero, Trit::Zero]);
        // all ones: 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=NAND(0,1)=1,
        // 22=NAND(0,1)=1, 23=NAND(1,1)=0
        assert_eq!(outputs_of(&n, "11111"), vec![Trit::One, Trit::Zero]);
    }

    #[test]
    fn x_inputs_propagate_pessimistically() {
        let n = c17();
        let out = outputs_of(&n, "XXXXX");
        assert!(out.iter().all(|&t| t == Trit::X));
        // but a controlling 0 on input 3 (third input) forces both NANDs high
        let out = outputs_of(&n, "XX0XX");
        // 10 = NAND(1, 0) = 1; 11 = NAND(0, 6) = 1
        // 16 = NAND(2, 1) = X; 22 = NAND(1, X) = X
        assert_eq!(out[0], Trit::X);
    }

    #[test]
    fn forced_value_overrides_driver() {
        let n = c17();
        let p: TestPattern = "00000".parse().unwrap();
        let g10 = n.find_net("10").unwrap();
        let good = simulate(&n, &p);
        assert_eq!(good[g10.index()], Trit::One);
        let faulty = simulate_with_forced(&n, &p, &[(g10, Trit::Zero)]);
        assert_eq!(faulty[g10.index()], Trit::Zero);
        // 22 = NAND(10, 16): good NAND(1,1)=0, faulty NAND(0,1)=1
        let g22 = n.find_net("22").unwrap();
        assert_ne!(good[g22.index()], faulty[g22.index()]);
    }

    #[test]
    fn forced_input_is_respected() {
        let n = c17();
        let p: TestPattern = "XXXXX".parse().unwrap();
        let pi = n.inputs()[0];
        let v = simulate_with_forced(&n, &p, &[(pi, Trit::One)]);
        assert_eq!(v[pi.index()], Trit::One);
    }

    #[test]
    #[should_panic(expected = "pattern width")]
    fn width_is_validated() {
        let n = c17();
        let p: TestPattern = "101".parse().unwrap();
        let _ = simulate(&n, &p);
    }
}
