//! 64-way bit-parallel two-valued simulation and fault grading.

use evotc_netlist::{GateKind, Netlist};

use crate::fault::StuckAtFault;

/// Simulates up to 64 fully specified patterns at once.
///
/// `inputs[j]` carries one bit per pattern for primary input `j` (bit `p` =
/// pattern `p`'s value). Returns one word per net. This is the classic
/// bit-parallel technique that makes fault grading of whole test sets cheap.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the circuit's input count.
///
/// # Example
///
/// ```
/// use evotc_netlist::{iscas, parse_bench};
/// use evotc_sim::simulate64;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c17 = parse_bench(iscas::C17_BENCH)?;
/// // Pattern 0: all zeros; pattern 1: all ones.
/// let inputs = vec![0b10u64; 5];
/// let values = simulate64(&c17, &inputs);
/// let out0 = c17.outputs()[0];
/// assert_eq!(values[out0.index()] & 0b11, 0b10);
/// # Ok(())
/// # }
/// ```
pub fn simulate64(netlist: &Netlist, inputs: &[u64]) -> Vec<u64> {
    simulate64_with_fault(netlist, inputs, None)
}

fn simulate64_with_fault(
    netlist: &Netlist,
    inputs: &[u64],
    fault: Option<StuckAtFault>,
) -> Vec<u64> {
    assert_eq!(
        inputs.len(),
        netlist.num_inputs(),
        "input word count {} != inputs {}",
        inputs.len(),
        netlist.num_inputs()
    );
    let mut values = vec![0u64; netlist.num_nodes()];
    for (j, &input) in netlist.inputs().iter().enumerate() {
        values[input.index()] = inputs[j];
    }
    // Sweep the SoA kind array directly: at a million gates the per-node
    // accessor calls are measurable against the two loads per CSR slice.
    let kinds = netlist.kinds();
    for id in netlist.node_ids() {
        let kind = kinds[id.index()];
        if kind != GateKind::Input {
            let fanins = netlist.fanins(id);
            let mut it = fanins.iter().map(|f| values[f.index()]);
            let first = it.next().expect("gates have fanins");
            let word = match kind {
                GateKind::Input => unreachable!(),
                GateKind::Buf => first,
                GateKind::Not => !first,
                GateKind::And => it.fold(first, |a, b| a & b),
                GateKind::Nand => !it.fold(first, |a, b| a & b),
                GateKind::Or => it.fold(first, |a, b| a | b),
                GateKind::Nor => !it.fold(first, |a, b| a | b),
                GateKind::Xor => it.fold(first, |a, b| a ^ b),
                GateKind::Xnor => !it.fold(first, |a, b| a ^ b),
            };
            values[id.index()] = word;
        }
        if let Some(f) = fault {
            if f.net == id {
                values[id.index()] = if f.stuck_at { u64::MAX } else { 0 };
            }
        }
    }
    values
}

/// Which of the 64 patterns detect `fault`: bit `p` of the result is set iff
/// some primary output differs between the good and faulty circuit under
/// pattern `p`.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the circuit's input count.
pub fn detected_mask(netlist: &Netlist, fault: StuckAtFault, inputs: &[u64]) -> u64 {
    let good = simulate64(netlist, inputs);
    let bad = simulate64_with_fault(netlist, inputs, Some(fault));
    let mut mask = 0u64;
    for &o in netlist.outputs() {
        mask |= good[o.index()] ^ bad[o.index()];
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use evotc_bits::TestPattern;
    use evotc_netlist::Netlist;
    use evotc_netlist::{iscas, parse_bench};

    fn c17() -> Netlist {
        parse_bench(iscas::C17_BENCH).unwrap()
    }

    #[test]
    fn agrees_with_scalar_simulation() {
        let n = c17();
        // 32 arbitrary patterns, packed and simulated both ways.
        let patterns: Vec<TestPattern> = (0..32u32)
            .map(|i| {
                let s: String = (0..5)
                    .map(|j| if (i >> j) & 1 == 1 { '1' } else { '0' })
                    .collect();
                s.parse().unwrap()
            })
            .collect();
        let mut inputs = vec![0u64; 5];
        for (p, pattern) in patterns.iter().enumerate() {
            for (j, word) in inputs.iter_mut().enumerate() {
                if pattern.trit(j).to_bool().unwrap() {
                    *word |= 1 << p;
                }
            }
        }
        let words = simulate64(&n, &inputs);
        for (p, pattern) in patterns.iter().enumerate() {
            let scalar = crate::eval::simulate(&n, pattern);
            for id in n.node_ids() {
                let parallel_bit = (words[id.index()] >> p) & 1 == 1;
                assert_eq!(
                    scalar[id.index()].to_bool(),
                    Some(parallel_bit),
                    "net {id} pattern {p}"
                );
            }
        }
    }

    #[test]
    fn stuck_output_detected_by_some_pattern() {
        let n = c17();
        let out = n.outputs()[0];
        // 16 varied patterns
        let inputs: Vec<u64> = (0..5).map(|j| 0x96C3_u64.rotate_left(j * 7)).collect();
        let m0 = detected_mask(&n, StuckAtFault::sa0(out), &inputs);
        let m1 = detected_mask(&n, StuckAtFault::sa1(out), &inputs);
        // Every pattern detects exactly one of sa0/sa1 at an observed output.
        assert_eq!(m0 | m1, u64::MAX);
        assert_eq!(m0 & m1, 0);
    }

    #[test]
    fn undetectable_without_sensitization() {
        let n = c17();
        let g10 = n.find_net("10").unwrap();
        // Pattern where 16 is 0... choose all-ones: 16=NAND(2=1,11=0)=1.
        // Let's simply check: a fault is not detected when mask bit is 0 for
        // patterns that produce identical outputs.
        let inputs = vec![0u64; 5]; // single pattern 0: all zeros
        let mask = detected_mask(&n, StuckAtFault::sa1(g10), &inputs);
        // good 10 = NAND(0,0) = 1 == forced 1: no difference anywhere
        assert_eq!(mask & 1, 0);
    }

    #[test]
    #[should_panic(expected = "input word count")]
    fn validates_width() {
        let n = c17();
        let _ = simulate64(&n, &[0, 0]);
    }
}
