//! Logic and fault simulation over `evotc-netlist` circuits.
//!
//! Substrate for reproducing the paper's test-set generation flow:
//!
//! * [`simulate`] — three-valued (`0`/`1`/`X`) full-circuit simulation, the
//!   engine behind PODEM implication in `evotc-atpg`.
//! * [`simulate64`] — 64-way bit-parallel two-valued simulation for fast
//!   fault grading.
//! * [`StuckAtFault`], [`all_faults`], [`collapse_faults`] — the single
//!   stuck-at fault model with structural equivalence collapsing.
//! * [`detected_mask`] — bit-parallel stuck-at fault simulation (which of 64
//!   patterns detect a fault), used for fault dropping during ATPG.
//! * [`delay`] — structural paths and the robust path-delay sensitization
//!   check used by the two-pattern test generator.
//!
//! # Example
//!
//! ```
//! use evotc_bits::TestPattern;
//! use evotc_netlist::{iscas, parse_bench};
//! use evotc_sim::simulate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c17 = parse_bench(iscas::C17_BENCH)?;
//! let pattern: TestPattern = "10110".parse()?;
//! let values = simulate(&c17, &pattern);
//! let out = c17.outputs()[0];
//! assert!(values[out.index()].is_specified());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
mod eval;
mod fault;
mod logic;
mod parallel;

pub use eval::{simulate, simulate_with_forced};
pub use fault::{all_faults, collapse_faults, StuckAtFault};
pub use logic::eval_gate;
pub use parallel::{detected_mask, simulate64};
