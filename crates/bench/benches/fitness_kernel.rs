//! Old vs new fitness evaluation: the legacy per-genome path
//! (`MvSet::from_genes` → `Covering::cover` → `huffman_code`) against the
//! allocation-free, bit-sliced scratch kernel
//! (`MvFitness::evaluate_scratch`), on the paper-default shape (K=12, L=64)
//! over a calibrated ISCAS-like workload and on a large synthetic set.
//!
//! The kernel must come in at ≥ 3× the legacy throughput on the paper shape
//! (ISSUE 3 acceptance bar); `evotc_bench --bin fitness_smoke` measures the
//! same ratio quickly — over the identical `fitness_fixture` workloads —
//! and writes it to `BENCH_fitness.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use evotc_bench::fitness_fixture::{
    paper_histogram, random_genomes, synthetic_histogram, BLOCK_LEN, NUM_MVS,
};
use evotc_bits::BlockHistogram;
use evotc_core::{EvalScratch, MvFitness};
use evotc_evo::FitnessEval;

const BATCH: usize = 64;

fn bench_pair(c: &mut Criterion, label: &str, histogram: &BlockHistogram, payload_bits: f64) {
    let fitness = MvFitness::new(BLOCK_LEN, true, histogram, payload_bits);
    let genomes = random_genomes(BATCH, BLOCK_LEN * NUM_MVS, 42);

    c.bench_function(&format!("fitness_legacy_{label}"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for g in &genomes {
                acc += fitness.evaluate(black_box(g));
            }
            acc
        })
    });
    c.bench_function(&format!("fitness_kernel_{label}"), |b| {
        let mut scratch = EvalScratch::new();
        b.iter(|| {
            let mut acc = 0.0;
            for g in &genomes {
                acc += fitness.evaluate_scratch(black_box(g), &mut scratch);
            }
            acc
        })
    });

    // Sanity: the two paths agree bit-for-bit on this workload.
    let mut scratch = EvalScratch::new();
    for g in &genomes {
        assert_eq!(
            fitness.evaluate(g).to_bits(),
            fitness.evaluate_scratch(g, &mut scratch).to_bits(),
            "kernel diverged from legacy on {label}"
        );
    }
}

fn bench_fitness_kernel(c: &mut Criterion) {
    let (paper, paper_bits) = paper_histogram();
    bench_pair(c, "paper_k12_l64", &paper, paper_bits);
    let (synthetic, synth_bits) = synthetic_histogram();
    bench_pair(c, "synth_large", &synthetic, synth_bits);
}

criterion_group!(benches, bench_fitness_kernel);
criterion_main!(benches);
