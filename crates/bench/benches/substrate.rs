//! Criterion benchmarks of the substrates: Huffman coding, bit-parallel
//! fault simulation, PODEM and the decoder FSM.

use criterion::{criterion_group, criterion_main, Criterion};
use evotc_atpg::{Podem, PodemConfig};
use evotc_codes::huffman_code;
use evotc_core::{NineCHuffmanCompressor, TestCompressor};
use evotc_decoder::DecoderFsm;
use evotc_netlist::{generate, iscas, parse_bench, GeneratorConfig};
use evotc_sim::{all_faults, detected_mask, simulate64};

fn bench_huffman(c: &mut Criterion) {
    let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
    c.bench_function("huffman_64_symbols", |b| b.iter(|| huffman_code(&freqs)));
}

fn bench_fault_sim(c: &mut Criterion) {
    let n = generate(&GeneratorConfig {
        inputs: 32,
        outputs: 16,
        gates: 500,
        seed: 2,
    });
    let inputs: Vec<u64> = (0..32)
        .map(|j| 0x9E37_79B9_7F4A_7C15u64.rotate_left(j))
        .collect();
    c.bench_function("simulate64_500_gates", |b| {
        b.iter(|| simulate64(&n, &inputs))
    });
    let fault = all_faults(&n)[100];
    c.bench_function("fault_sim_500_gates", |b| {
        b.iter(|| detected_mask(&n, fault, &inputs))
    });
}

fn bench_podem(c: &mut Criterion) {
    let n = parse_bench(iscas::C17_BENCH).unwrap();
    let faults = all_faults(&n);
    c.bench_function("podem_c17_all_faults", |b| {
        b.iter(|| {
            let podem = Podem::new(&n, PodemConfig::default());
            faults.iter().fold(0usize, |n, &f| {
                criterion::black_box(podem.run(f));
                n + 1
            })
        })
    });
}

fn bench_decoder(c: &mut Criterion) {
    let set = evotc_workloads::synth::generate(&evotc_workloads::synth::SyntheticSpec {
        width: 24,
        total_bits: 24 * 200,
        specified_density: 0.4,
        one_bias: 0.35,
        seed: 9,
    });
    let compressed = NineCHuffmanCompressor::new(8).compress(&set).unwrap();
    c.bench_function("decoder_fsm_stream", |b| {
        b.iter(|| {
            let mut fsm = DecoderFsm::for_compressed(&compressed);
            let mut blocks = 0u64;
            for bit in compressed.stream() {
                if fsm.clock(bit).is_some() {
                    blocks += 1;
                }
            }
            blocks
        })
    });
}

criterion_group!(
    benches,
    bench_huffman,
    bench_fault_sim,
    bench_podem,
    bench_decoder
);
criterion_main!(benches);
