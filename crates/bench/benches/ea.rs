//! Criterion benchmarks of the evolutionary engine itself.

use criterion::{criterion_group, criterion_main, Criterion};
use evotc_evo::{operators, EaBuilder, EaConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_operators(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let a: Vec<u8> = (0..768).map(|_| rng.gen_range(0..3)).collect();
    let b: Vec<u8> = (0..768).map(|_| rng.gen_range(0..3)).collect();
    c.bench_function("crossover_768_genes", |bch| {
        bch.iter(|| operators::crossover(&a, &b, &mut rng))
    });
    c.bench_function("mutate_768_genes", |bch| {
        bch.iter(|| operators::mutate(&a, &mut rng, |r| r.gen_range(0..3u8)))
    });
    c.bench_function("invert_768_genes", |bch| {
        bch.iter(|| operators::invert(&a, &mut rng))
    });
}

fn bench_generations(c: &mut Criterion) {
    c.bench_function("ea_one_max_100_gens", |bch| {
        bch.iter(|| {
            let config = EaConfig::builder()
                .stagnation_limit(1_000)
                .max_generations(100)
                .seed(1)
                .build();
            EaBuilder::new(
                64,
                |rng| rng.gen::<bool>(),
                |g: &[bool]| g.iter().filter(|&&x| x).count() as f64,
            )
            .config(config)
            .run()
        })
    });
}

criterion_group!(benches, bench_operators, bench_generations);
criterion_main!(benches);
