//! Criterion benchmarks of the compression pipeline: covering, encoding and
//! the end-to-end compressors on a fixed calibrated workload.

use criterion::{criterion_group, criterion_main, Criterion};
use evotc_bits::{BlockHistogram, TestSetString};
use evotc_core::{
    encoded_size, Covering, EaCompressor, MvSet, NineCCompressor, NineCHuffmanCompressor,
    TestCompressor,
};
use evotc_workloads::synth::{generate, SyntheticSpec};

fn workload() -> evotc_bits::TestSet {
    generate(&SyntheticSpec {
        width: 24,
        total_bits: 24 * 500,
        specified_density: 0.45,
        one_bias: 0.35,
        seed: 7,
    })
}

fn bench_compressors(c: &mut Criterion) {
    let set = workload();
    c.bench_function("ninec_fixed_code", |b| {
        b.iter(|| NineCCompressor::new(8).compress(&set).unwrap())
    });
    c.bench_function("ninec_huffman", |b| {
        b.iter(|| NineCHuffmanCompressor::new(8).compress(&set).unwrap())
    });
    c.bench_function("ea_small_budget", |b| {
        b.iter(|| {
            EaCompressor::builder(8, 9)
                .seed(1)
                .stagnation_limit(5)
                .max_evaluations(100)
                .build()
                .compress(&set)
                .unwrap()
        })
    });
}

fn bench_covering_kernel(c: &mut Criterion) {
    let set = workload();
    let string = TestSetString::new(&set, 12);
    let hist = BlockHistogram::from_string(&string);
    let mvs = MvSet::parse(
        12,
        &[
            "000000000000",
            "111111111111",
            "000000UUUUUU",
            "UUUUUU000000",
        ],
    )
    .unwrap()
    .with_all_u();
    c.bench_function("covering", |b| {
        b.iter(|| Covering::cover(&mvs, &hist).unwrap())
    });
    c.bench_function("fitness_encoded_size", |b| {
        b.iter(|| encoded_size(&mvs, &hist).unwrap())
    });
    c.bench_function("histogram_fold", |b| {
        b.iter(|| BlockHistogram::from_string(&string))
    });
}

criterion_group!(benches, bench_compressors, bench_covering_kernel);
criterion_main!(benches);
