//! Scaling of the parallel fitness evaluator: the same EA run (identical
//! seed, identical results — see `tests/parallel_determinism.rs`) at 1, 2,
//! 4 and 8 threads on a calibrated synthetic workload.
//!
//! The EA configuration widens the paper's population (`S = 32`, `C = 64`)
//! so each generation hands the evaluator a batch worth parallelizing; the
//! fitness kernel (covering + Huffman over the distinct-block histogram) is
//! the paper's. On a multicore machine the 4-thread run should come in at
//! well under the 1-thread wall-clock; eval/s lines make the throughput
//! comparable across thread counts.

use criterion::{criterion_group, criterion_main, Criterion};
use evotc_bits::{BlockHistogram, TestSet, TestSetString};
use evotc_core::EaCompressor;
use evotc_evo::EaConfig;
use evotc_workloads::{tables, workload_with_limit};

const BLOCK_LEN: usize = 12;
const NUM_MVS: usize = 64;

fn calibrated_workload() -> (TestSet, BlockHistogram, usize) {
    let row = tables::stuck_at_row("s953").expect("s953 is a Table 1 row");
    let set = workload_with_limit(row.circuit, row.test_set_bits, row.rate_9c, 1, 1 << 14, 1);
    let string = TestSetString::try_new(&set, BLOCK_LEN).expect("K=12 fits the workload");
    let histogram = BlockHistogram::from_string(&string);
    let payload_bits = string.payload_bits();
    (set, histogram, payload_bits)
}

fn compressor(threads: usize) -> EaCompressor {
    // A wide (S + C) so each generation's child batch is worth chunking
    // across workers; budget-capped so one run is a stable unit of work.
    let config = EaConfig::builder()
        .population_size(32)
        .children_per_generation(64)
        .stagnation_limit(1_000)
        .max_evaluations(1_024)
        .seed(1)
        .threads(threads)
        .build();
    EaCompressor::builder(BLOCK_LEN, NUM_MVS)
        .config(config)
        .build()
}

fn bench_ea_parallel(c: &mut Criterion) {
    let (set, histogram, payload_bits) = calibrated_workload();
    for threads in [1usize, 2, 4, 8] {
        let ea = compressor(threads);
        c.bench_function(&format!("ea_parallel_{threads}_threads"), |b| {
            b.iter(|| ea.optimize_histogram(&histogram, payload_bits))
        });
        let summary = ea
            .compress_with_summary(&set)
            .expect("calibrated workload compresses")
            .1;
        println!(
            "ea_parallel_{threads}_threads throughput: {:.0} eval/s ({} evals)",
            summary.evaluations_per_sec(),
            summary.evaluations
        );
    }
}

criterion_group!(benches, bench_ea_parallel);
criterion_main!(benches);
