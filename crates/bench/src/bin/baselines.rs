//! Baseline F: the classic coders from the paper's related-work section
//! (run-length [1], Golomb [3], FDR [4], selective Huffman [2]) next to 9C
//! and the EA, on the same calibrated workloads.
//!
//! Usage: `cargo run -p evotc-bench --bin baselines --release [-- --full]`

use evotc_bench::{ea_average, RunProfile};
use evotc_codes::{fdr, golomb, runlength, selective};
use evotc_core::{NineCCompressor, TestCompressor};
use evotc_workloads::tables::TABLE1;
use evotc_workloads::workload_with_limit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = RunProfile::from_args(args.iter().cloned());
    println!("# Baseline comparison (zero-filled don't-cares for run-length codes)\n");
    println!("| circuit | RL(b=4) | Golomb(best m) | FDR | SelHuff(8,16) | 9C | EA |");
    println!("|---|---:|---:|---:|---:|---:|---:|");
    for row in TABLE1.iter().take(12) {
        let set = workload_with_limit(
            row.circuit,
            row.test_set_bits,
            row.rate_9c,
            1,
            profile.size_limit,
            1,
        );
        // Classic coders expect fully specified data: zero-fill the Xs.
        let bits: Vec<bool> = set
            .iter()
            .flat_map(|p| {
                p.iter()
                    .map(|t| t.to_bool().unwrap_or(false))
                    .collect::<Vec<_>>()
            })
            .collect();
        let rl = runlength::compress(&bits, 4).rate_percent();
        let m = golomb::best_group_size(&bits, 64);
        let go = golomb::compress(&bits, m).rate_percent();
        let fd = fdr::compress(&bits).rate_percent();
        let sh = selective::compress(&bits, 8, 16).rate_percent();
        let ninec = NineCCompressor::new(8)
            .compress(&set)
            .map(|c| c.rate_percent())
            .unwrap_or(f64::NEG_INFINITY);
        let ea = ea_average(&set, 12, 64, &profile);
        println!(
            "| {} | {rl:.1} | {go:.1} | {fd:.1} | {sh:.1} | {ninec:.1} | {ea:.1} |",
            row.circuit
        );
    }
}
