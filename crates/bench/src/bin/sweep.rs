//! Ablation A: compression rate over the (K, L) grid — the paper's
//! "we generated data for numerous values of K and L" (Section 4).
//!
//! Usage: `cargo run -p evotc-bench --bin sweep --release [-- --full] [circuit]`

use evotc_bench::{circuit_filter, ea_average, RunProfile};
use evotc_workloads::tables::stuck_at_row;
use evotc_workloads::workload_with_limit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = RunProfile::from_args(args.iter().cloned());
    let circuit = circuit_filter(&args)
        .first()
        .map(|s| s.as_str())
        .unwrap_or("s444");
    let row = stuck_at_row(circuit).expect("circuit must appear in Table 1");
    let set = workload_with_limit(
        row.circuit,
        row.test_set_bits,
        row.rate_9c,
        1,
        profile.size_limit,
        1,
    );
    println!("# Ablation A — (K, L) sweep on {circuit}\n");
    println!("| K | L | EA rate (%) |");
    println!("|---:|---:|---:|");
    for k in [4usize, 6, 8, 12, 16] {
        for l in [4usize, 9, 16, 32, 64] {
            let rate = ea_average(&set, k, l, &profile);
            println!("| {k} | {l} | {rate:.1} |");
        }
    }
}
