//! Regenerates Table 2 (path-delay test sets): 9C vs 9C+HC vs EA1 vs EA2.
//!
//! Usage: `cargo run -p evotc-bench --bin table2 --release [-- --full] [circuit…]`

use evotc_bench::{markdown_table, run_path_delay_row, RunProfile};
use evotc_workloads::tables::{TABLE2, TABLE2_AVG};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = RunProfile::from_args(args.iter().cloned());
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let mut rows = Vec::new();
    for row in TABLE2 {
        if !filter.is_empty() && !filter.iter().any(|f| *f == row.circuit) {
            continue;
        }
        eprintln!("running {} ({} bits)…", row.circuit, row.test_set_bits);
        rows.push(run_path_delay_row(row, &profile));
    }
    println!("# Table 2 — path-delay test sets (measured)\n");
    println!("{}", markdown_table(&rows, ("EA1", "EA2")));
    println!(
        "paper averages: 9C {:.1} | 9C+HC {:.1} | EA1 {:.1} | EA2 {:.1}",
        TABLE2_AVG.0, TABLE2_AVG.1, TABLE2_AVG.2, TABLE2_AVG.3
    );
}
