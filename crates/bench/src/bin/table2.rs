//! Regenerates Table 2 (path-delay test sets): 9C vs 9C+HC vs EA1 vs EA2.
//!
//! Usage: `cargo run -p evotc-bench --bin table2 --release [-- --full] [--threads N] [circuit…]`

use evotc_bench::{circuit_filter, markdown_table, run_path_delay_rows, RunProfile};
use evotc_workloads::tables::{TABLE2, TABLE2_AVG};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = RunProfile::from_args(args.iter().cloned());
    let filter = circuit_filter(&args);

    let selected: Vec<_> = TABLE2
        .iter()
        .filter(|row| filter.is_empty() || filter.iter().any(|f| *f == row.circuit))
        .collect();
    for row in &selected {
        eprintln!("queued {} ({} bits)…", row.circuit, row.test_set_bits);
    }
    let rows = run_path_delay_rows(&selected, &profile);
    println!("# Table 2 — path-delay test sets (measured)\n");
    println!("{}", markdown_table(&rows, ("EA1", "EA2")));
    println!(
        "paper averages: 9C {:.1} | 9C+HC {:.1} | EA1 {:.1} | EA2 {:.1}",
        TABLE2_AVG.0, TABLE2_AVG.1, TABLE2_AVG.2, TABLE2_AVG.3
    );
}
