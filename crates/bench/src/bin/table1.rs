//! Regenerates Table 1 (stuck-at test sets): 9C vs 9C+HC vs EA vs EA-Best.
//!
//! Usage: `cargo run -p evotc-bench --bin table1 --release [-- --full] [--threads N] [circuit…]`

use evotc_bench::{circuit_filter, markdown_table, run_stuck_at_rows, RunProfile};
use evotc_workloads::tables::{TABLE1, TABLE1_AVG};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = RunProfile::from_args(args.iter().cloned());
    let filter = circuit_filter(&args);

    let selected: Vec<_> = TABLE1
        .iter()
        .filter(|row| filter.is_empty() || filter.iter().any(|f| *f == row.circuit))
        .collect();
    for row in &selected {
        eprintln!("queued {} ({} bits)…", row.circuit, row.test_set_bits);
    }
    let rows = run_stuck_at_rows(&selected, &profile);
    println!("# Table 1 — stuck-at test sets (measured)\n");
    println!("{}", markdown_table(&rows, ("EA", "EA-Best")));
    println!(
        "paper averages: 9C {:.1} | 9C+HC {:.1} | EA {:.1} | EA-Best {:.1}",
        TABLE1_AVG.0, TABLE1_AVG.1, TABLE1_AVG.2, TABLE1_AVG.3
    );
}
