//! Regenerates Table 1 (stuck-at test sets): 9C vs 9C+HC vs EA vs EA-Best.
//!
//! Usage: `cargo run -p evotc-bench --bin table1 --release [-- --full] [circuit…]`

use evotc_bench::{markdown_table, run_stuck_at_row, RunProfile};
use evotc_workloads::tables::{TABLE1, TABLE1_AVG};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = RunProfile::from_args(args.iter().cloned());
    let filter: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let mut rows = Vec::new();
    for row in TABLE1 {
        if !filter.is_empty() && !filter.iter().any(|f| *f == row.circuit) {
            continue;
        }
        eprintln!("running {} ({} bits)…", row.circuit, row.test_set_bits);
        rows.push(run_stuck_at_row(row, &profile));
    }
    println!("# Table 1 — stuck-at test sets (measured)\n");
    println!("{}", markdown_table(&rows, ("EA", "EA-Best")));
    println!(
        "paper averages: 9C {:.1} | 9C+HC {:.1} | EA {:.1} | EA-Best {:.1}",
        TABLE1_AVG.0, TABLE1_AVG.1, TABLE1_AVG.2, TABLE1_AVG.3
    );
}
