//! Ablation B: EA parameter sensitivity — the paper's conclusion that
//! "further improvements are possible by fitting the parameters of the
//! Evolutionary Optimization, such as population size and operator
//! probabilities" (Section 5).
//!
//! Usage: `cargo run -p evotc-bench --bin operators --release [-- --full]`

use evotc_bench::RunProfile;
use evotc_core::{EaCompressor, TestCompressor};
use evotc_evo::EaConfig;
use evotc_workloads::tables::stuck_at_row;
use evotc_workloads::workload_with_limit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = RunProfile::from_args(args.iter().cloned());
    let row = stuck_at_row("s444").expect("s444 is in Table 1");
    let set = workload_with_limit(
        row.circuit,
        row.test_set_bits,
        row.rate_9c,
        1,
        profile.size_limit,
        1,
    );

    let variants: &[(&str, f64, f64, f64, usize, usize)] = &[
        ("paper defaults", 0.30, 0.30, 0.10, 10, 5),
        ("mutation-heavy", 0.10, 0.60, 0.10, 10, 5),
        ("crossover-heavy", 0.60, 0.20, 0.10, 10, 5),
        ("no inversion", 0.35, 0.35, 0.00, 10, 5),
        ("large population", 0.30, 0.30, 0.10, 30, 15),
        ("greedy (S=4,C=8)", 0.30, 0.30, 0.10, 4, 8),
    ];

    println!("# Ablation B — EA parameter sensitivity on s444\n");
    println!("| variant | px | pm | pi | S | C | rate (%) |");
    println!("|---|---:|---:|---:|---:|---:|---:|");
    for &(name, px, pm, pi, s, c) in variants {
        let config = EaConfig::builder()
            .population_size(s)
            .children_per_generation(c)
            .crossover_probability(px)
            .mutation_probability(pm)
            .inversion_probability(pi)
            .stagnation_limit(profile.stagnation_limit)
            .max_evaluations(profile.max_evaluations)
            .seed(1)
            .build();
        let rate = EaCompressor::builder(12, 64)
            .config(config)
            .build()
            .compress(&set)
            .map(|r| r.rate_percent())
            .unwrap_or(f64::NEG_INFINITY);
        println!("| {name} | {px:.2} | {pm:.2} | {pi:.2} | {s} | {c} | {rate:.1} |");
    }
}
