//! Netlist substrate scale benchmark: proves the million-gate claim with
//! numbers instead of assertions.
//!
//! For synthetic circuits at 10k, 100k and 1M gates, measures:
//!
//! * `build` — generator → validated, topologically sorted [`Netlist`]
//!   (gates/sec, includes the Kahn sort and CSR construction);
//! * `levelize` — `NetlistBuilder::finish()` alone on a pre-declared
//!   builder (gates/sec);
//! * `parse_bench` / `parse_yosys` — front-end throughput on the circuit's
//!   own serialized text (gates/sec; the Yosys JSON DOM is skipped at 1M
//!   where the document alone is hundreds of MB);
//! * `sim64` — 64-pattern bit-parallel simulation (gate-evals/sec);
//! * `bytes_per_gate` — [`Netlist::heap_bytes`] over gate count, the
//!   peak-RSS proxy for the representation itself.
//!
//! Writes `BENCH_netlist.json`. With `--check-only` it gates correctness
//! and scale instead of timing everything: the 100k-gate circuit must
//! build, levelize and bit-parallel-simulate inside a wall-clock budget,
//! and a 10k-gate circuit must survive `.bench` and Yosys-JSON round trips
//! structurally unchanged. Exits non-zero on any failure.
//!
//! ```text
//! cargo run --release -p evotc_bench --bin netlist_scale [-- --check-only]
//! ```

use std::time::{Duration, Instant};

use evotc_netlist::{
    generate, parse_bench, parse_yosys_json, write_bench, write_yosys_json, GateKind,
    GeneratorConfig, Netlist, NetlistBuilder,
};
use evotc_sim::simulate64;

/// Gate counts per scale step. The last is the million-gate target.
const SCALES: [usize; 3] = [10_000, 100_000, 1_000_000];
/// `--check-only` wall budget for build + levelize + simulate at 100k
/// gates. Generous for release builds on a loaded CI runner (locally the
/// three together run well under a second).
const CHECK_BUDGET: Duration = Duration::from_secs(30);

fn fail(msg: &str) -> ! {
    eprintln!("netlist_scale: FAIL: {msg}");
    std::process::exit(1);
}

/// Re-declares a finished netlist into a fresh builder (same declaration
/// order as the topological order), so `finish()` can be timed alone.
fn to_builder(n: &Netlist) -> NetlistBuilder {
    let mut b = NetlistBuilder::new(n.name());
    for id in n.node_ids() {
        if n.kind(id) == GateKind::Input {
            match n.net_name(id) {
                Some(name) => b.input(name),
                None => b.input_anon(),
            };
        } else {
            let fanins = n.fanins(id).to_vec();
            match n.net_name(id) {
                Some(name) => b.gate(name, n.kind(id), fanins),
                None => b.gate_anon(n.kind(id), fanins),
            }
            .expect("declarations copied from a valid netlist");
        }
    }
    for &o in n.outputs() {
        b.output(o);
    }
    b
}

/// Structural equality after a serialize → parse round trip.
fn assert_round_trip(a: &Netlist, b: &Netlist, what: &str) {
    if a.num_nodes() != b.num_nodes() || a.inputs() != b.inputs() || a.outputs() != b.outputs() {
        fail(&format!("{what}: interface changed across round trip"));
    }
    for id in a.node_ids() {
        if a.kind(id) != b.kind(id)
            || a.fanins(id) != b.fanins(id)
            || a.level(id) != b.level(id)
            || a.name_of(id).to_string() != b.name_of(id).to_string()
        {
            fail(&format!("{what}: node {id} changed across round trip"));
        }
    }
}

/// Deterministic pattern words for the simulation sweep.
fn input_words(n: &Netlist) -> Vec<u64> {
    (0..n.num_inputs() as u64)
        .map(|j| {
            0x9E37_79B9_7F4A_7C15u64
                .wrapping_mul(j + 1)
                .rotate_left((j % 63) as u32)
        })
        .collect()
}

struct ScaleRow {
    gates: usize,
    build_gps: f64,
    levelize_gps: f64,
    parse_bench_gps: f64,
    /// `None` where the DOM would dwarf the netlist (1M gates).
    parse_yosys_gps: Option<f64>,
    sim_gevals_per_sec: f64,
    bytes_per_gate: f64,
    depth: u32,
    edges: usize,
}

fn measure_scale(gates: usize) -> ScaleRow {
    let config = GeneratorConfig::synthetic(gates, 0xE07C);

    let t = Instant::now();
    let netlist = generate(&config);
    let build_s = t.elapsed().as_secs_f64();

    let builder = to_builder(&netlist);
    let t = Instant::now();
    let releveled = builder.finish().expect("valid declarations");
    let levelize_s = t.elapsed().as_secs_f64();
    if releveled.depth() != netlist.depth() {
        fail("re-levelized netlist changed depth");
    }

    let bench_text = write_bench(&netlist);
    let t = Instant::now();
    let reparsed = parse_bench(&bench_text).unwrap_or_else(|e| fail(&format!("parse_bench: {e}")));
    let parse_bench_s = t.elapsed().as_secs_f64();
    if reparsed.num_nodes() != netlist.num_nodes() {
        fail("parse_bench round trip changed node count");
    }
    drop(reparsed);
    drop(bench_text);

    let parse_yosys_gps = if gates <= 100_000 {
        let json = write_yosys_json(&netlist);
        let t = Instant::now();
        let reparsed =
            parse_yosys_json(&json).unwrap_or_else(|e| fail(&format!("parse_yosys_json: {e}")));
        let parse_yosys_s = t.elapsed().as_secs_f64();
        if reparsed.num_nodes() != netlist.num_nodes() {
            fail("parse_yosys_json round trip changed node count");
        }
        Some(gates as f64 / parse_yosys_s)
    } else {
        None
    };

    let words = input_words(&netlist);
    let t = Instant::now();
    let values = simulate64(&netlist, &words);
    let sim_s = t.elapsed().as_secs_f64();
    // Keep the simulation from being optimized out.
    if values.iter().all(|&w| w == 0) {
        fail("simulation produced all-zero values");
    }

    ScaleRow {
        gates,
        build_gps: gates as f64 / build_s,
        levelize_gps: gates as f64 / levelize_s,
        parse_bench_gps: gates as f64 / parse_bench_s,
        parse_yosys_gps,
        sim_gevals_per_sec: (netlist.num_gates() * 64) as f64 / sim_s,
        bytes_per_gate: netlist.heap_bytes() as f64 / gates as f64,
        depth: netlist.depth(),
        edges: netlist.num_edges(),
    }
}

fn check_only() {
    // Gate 1: 10k-gate circuit round-trips structurally unchanged through
    // both front-ends.
    let small = generate(&GeneratorConfig::synthetic(10_000, 0xE07C));
    let from_bench = parse_bench(&write_bench(&small))
        .unwrap_or_else(|e| fail(&format!("10k .bench round trip: {e}")));
    assert_round_trip(&small, &from_bench, ".bench round trip");
    let from_yosys = parse_yosys_json(&write_yosys_json(&small))
        .unwrap_or_else(|e| fail(&format!("10k yosys round trip: {e}")));
    assert_round_trip(&small, &from_yosys, "yosys round trip");

    // Gate 2: the 100k-gate circuit builds, levelizes and simulates inside
    // the wall budget — the "netlist layer invisible in a profile" floor.
    let t = Instant::now();
    let netlist = generate(&GeneratorConfig::synthetic(100_000, 0xE07C));
    let releveled = to_builder(&netlist).finish().expect("valid declarations");
    if releveled.depth() != netlist.depth() {
        fail("re-levelized netlist changed depth");
    }
    let values = simulate64(&netlist, &input_words(&netlist));
    let elapsed = t.elapsed();
    if values.iter().all(|&w| w == 0) {
        fail("simulation produced all-zero values");
    }
    if elapsed > CHECK_BUDGET {
        fail(&format!(
            "100k-gate build+levelize+simulate took {elapsed:?} (budget {CHECK_BUDGET:?})"
        ));
    }
    println!(
        "netlist_scale --check-only: OK (100k gates in {:.2}s, round trips clean)",
        elapsed.as_secs_f64()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--check-only") {
        check_only();
        return;
    }

    let mut rows = Vec::new();
    for &gates in &SCALES {
        let row = measure_scale(gates);
        println!(
            "{:>9} gates: build {:>12.0}/s  levelize {:>12.0}/s  parse_bench {:>12.0}/s  \
             parse_yosys {:>12}  sim64 {:>13.0} gate-evals/s  {:>6.1} B/gate  depth {}  edges {}",
            row.gates,
            row.build_gps,
            row.levelize_gps,
            row.parse_bench_gps,
            row.parse_yosys_gps
                .map(|v| format!("{v:.0}/s"))
                .unwrap_or_else(|| "-".into()),
            row.sim_gevals_per_sec,
            row.bytes_per_gate,
            row.depth,
            row.edges,
        );
        rows.push(row);
    }

    let mut scales_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            scales_json.push_str(",\n");
        }
        scales_json.push_str(&format!(
            "    {{\"gates\": {}, \"build_gates_per_sec\": {:.0}, \
             \"levelize_gates_per_sec\": {:.0}, \"parse_bench_gates_per_sec\": {:.0}, \
             \"parse_yosys_gates_per_sec\": {}, \"sim64_gate_evals_per_sec\": {:.0}, \
             \"bytes_per_gate\": {:.1}, \"depth\": {}, \"edges\": {}}}",
            r.gates,
            r.build_gps,
            r.levelize_gps,
            r.parse_bench_gps,
            r.parse_yosys_gps
                .map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "null".into()),
            r.sim_gevals_per_sec,
            r.bytes_per_gate,
            r.depth,
            r.edges,
        ));
    }
    let json =
        format!("{{\n  \"bench\": \"netlist_scale\",\n  \"scales\": [\n{scales_json}\n  ]\n}}\n");
    let path = "BENCH_netlist.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e} (numbers are above)"),
    }
}
