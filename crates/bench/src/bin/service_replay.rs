//! Service replay harness: drives a mixed multi-tenant workload through
//! `evotc_service` and proves the robustness claims with numbers.
//!
//! The replay has five phases:
//!
//! 1. **Fresh wave** — distinct jobs across three tenants; all must
//!    complete fresh, byte-identical to the single-threaded
//!    [`run_spec`] oracle.
//! 2. **Duplicate wave** — the same specs resubmitted; every one must be
//!    served from the cross-run result cache with the oracle's bytes.
//! 3. **Hostile budgets** — wall-clock budgets below the admissible
//!    floor; every one must be a typed `DeadlineInfeasible` rejection.
//! 4. **Faulty tenant** — jobs with planned injected faults; the ones
//!    inside the retry budget must complete identically after backoff,
//!    the one beyond it must settle as `RetriesExhausted`.
//! 5. **Shed cycle** — a long preemptible job preempted by a filler burst
//!    over the high-water mark; it must resume from its checkpoint and
//!    finish byte-identical to an uninterrupted run.
//!
//! Afterwards the zero-lost-jobs identity is enforced: every submission
//! ended in exactly one of completed / cache-hit / typed-rejected /
//! permanently-failed. Writes `BENCH_service.json` with throughput,
//! latency percentiles (p50/p95/p99) and the shed/retry/cache counters.
//! With `--check-only` a smaller workload runs the same gates plus a
//! shape check on the written JSON and a p99-under-budget check; exits
//! non-zero on any failure.
//!
//! ```text
//! cargo run --release -p evotc_bench --bin service_replay [-- --check-only]
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};

use evotc_bits::TestSet;
use evotc_service::{
    run_spec, BackoffPolicy, BreakerPolicy, JobId, JobOutcome, JobResultData, JobSpec, Provenance,
    Rejected, Service, ServiceConfig, TenantId,
};

/// `--check-only` ceiling on the completed-job p99 latency. Generous: the
/// jobs are milliseconds each even in debug builds, but backoff delays and
/// shed cycles are real wall time on a loaded CI runner.
const P99_BUDGET: Duration = Duration::from_secs(10);

fn fail(msg: &str) -> ! {
    eprintln!("service_replay: FAIL: {msg}");
    std::process::exit(1);
}

/// Deterministic small test set, content varying with `salt`.
fn patterns(salt: u64) -> TestSet {
    let rows: Vec<String> = (0..6)
        .map(|i| {
            (0..8)
                .map(|j| match (salt.wrapping_mul(31) + i * 8 + j) % 5 {
                    0 => 'X',
                    1 | 2 => '1',
                    _ => '0',
                })
                .collect()
        })
        .collect();
    TestSet::parse(&rows).expect("generated rows are well-formed")
}

fn spec(tenant: u32, salt: u64) -> JobSpec {
    JobSpec::new(TenantId(tenant), patterns(salt), 8, 4, salt ^ 0xD47E)
}

struct ReplayNumbers {
    attempted: u64,
    completed_fresh: u64,
    cache_hits: u64,
    rejected_deadline: u64,
    rejected_other: u64,
    failed: u64,
    retries: u64,
    sheds: u64,
    checkpoint_failures: u64,
    latencies: Vec<Duration>,
    elapsed: Duration,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn replay(check_only: bool) -> ReplayNumbers {
    let distinct = if check_only { 9 } else { 24 };
    let hostile = if check_only { 3 } else { 6 };
    let faulty = if check_only { 3 } else { 6 };

    let started = Instant::now();

    // ---- Phases 1-4: the mixed wave on a shared four-worker pool. ----
    let service = Service::start(
        ServiceConfig::builder()
            .workers(4)
            .queue_capacity(64)
            .tenant_quota(32)
            .min_budget(Duration::from_millis(50))
            .backoff(BackoffPolicy {
                base: Duration::from_millis(5),
                factor: 2,
                cap: Duration::from_millis(40),
                max_retries: 2,
            })
            // The faulty wave deliberately racks up injected failures on
            // one tenant; the breaker walk has its own gating tests, so
            // here it only needs to stay out of the retry path's way.
            .breaker(BreakerPolicy {
                failure_threshold: 64,
                ..BreakerPolicy::default()
            })
            .build(),
    );

    // Phase 1: distinct fresh jobs. Remember each id's oracle digest.
    let specs: Vec<JobSpec> = (0..distinct)
        .map(|i| spec((i % 3) as u32, 100 + i as u64))
        .collect();
    let oracles: Vec<JobResultData> = specs
        .iter()
        .map(|s| run_spec(s).unwrap_or_else(|e| fail(&format!("oracle run: {e:?}"))))
        .collect();
    let mut expect: HashMap<JobId, usize> = HashMap::new();
    for (i, s) in specs.iter().enumerate() {
        let id = service
            .submit(s.clone())
            .unwrap_or_else(|r| fail(&format!("fresh wave rejected: {r:?}")));
        expect.insert(id, i);
    }
    service.drain();
    let fresh_completed = service.stats().completed_fresh;
    if fresh_completed != distinct as u64 {
        fail(&format!(
            "fresh wave: {fresh_completed}/{distinct} completed"
        ));
    }

    // Phase 2: exact duplicates — every submission must be a cache hit.
    for (i, s) in specs.iter().enumerate() {
        let id = service
            .submit(s.clone())
            .unwrap_or_else(|r| fail(&format!("duplicate wave rejected: {r:?}")));
        expect.insert(id, i);
    }
    let hits = service.stats().cache_hits;
    if hits != distinct as u64 {
        fail(&format!("duplicate wave: {hits}/{distinct} cache hits"));
    }

    // Phase 3: hostile budgets below the admissible floor.
    for i in 0..hostile {
        let mut s = spec(3, 300 + i as u64);
        s.budget = Some(Duration::from_millis(1));
        match service.submit(s) {
            Err(Rejected::DeadlineInfeasible { .. }) => {}
            other => fail(&format!(
                "hostile budget was not rejected as infeasible: {other:?}"
            )),
        }
    }

    // Phase 4: the faulty tenant. Jobs inside the retry budget (1-2
    // planned faults) must complete identically; one beyond it must
    // exhaust its retries.
    let mut retried_ids = Vec::new();
    for i in 0..faulty {
        let salt = 400 + i as u64;
        let mut s = spec(4, salt);
        s.planned_faults = 1 + (i as u32 % 2);
        let clean = {
            let mut c = s.clone();
            c.planned_faults = 0;
            c
        };
        let oracle = run_spec(&clean).unwrap_or_else(|e| fail(&format!("oracle run: {e:?}")));
        let id = service
            .submit(s)
            .unwrap_or_else(|r| fail(&format!("faulty wave rejected: {r:?}")));
        retried_ids.push((id, 1 + (i as u32 % 2), oracle));
    }
    let mut doomed = spec(4, 499);
    doomed.planned_faults = 10; // beyond max_retries = 2
    let doomed_id = service
        .submit(doomed)
        .unwrap_or_else(|r| fail(&format!("doomed job rejected: {r:?}")));
    let outcome = service.shutdown();
    if !outcome.stats.accounted() {
        fail(&format!("mixed wave lost jobs: {:?}", outcome.stats));
    }

    let by_id: HashMap<JobId, _> = outcome.reports.iter().map(|r| (r.id, r)).collect();
    for (id, oracle_idx) in &expect {
        let report = by_id
            .get(id)
            .unwrap_or_else(|| fail(&format!("no report for {id}")));
        match &report.outcome {
            JobOutcome::Completed { data, .. } => {
                let want = &oracles[*oracle_idx];
                if data != want || data.digest() != want.digest() {
                    fail(&format!("{id}: result diverged from the oracle"));
                }
            }
            other => fail(&format!("{id} did not complete: {other:?}")),
        }
    }
    let dup_hits = expect
        .keys()
        .filter(|id| {
            matches!(
                by_id[id].outcome,
                JobOutcome::Completed {
                    provenance: Provenance::Cache { .. },
                    ..
                }
            )
        })
        .count();
    if dup_hits != distinct {
        fail(&format!(
            "{dup_hits}/{distinct} duplicates were cache-served"
        ));
    }
    for (id, faults, oracle) in &retried_ids {
        let report = by_id
            .get(id)
            .unwrap_or_else(|| fail(&format!("no report for faulty {id}")));
        if report.attempts != faults + 1 {
            fail(&format!(
                "{id}: {} attempts for {faults} planned faults",
                report.attempts
            ));
        }
        match &report.outcome {
            JobOutcome::Completed { data, .. } if data == oracle => {}
            other => fail(&format!("retried {id} diverged: {other:?}")),
        }
    }
    match &by_id
        .get(&doomed_id)
        .unwrap_or_else(|| fail("no report for the doomed job"))
        .outcome
    {
        JobOutcome::Failed(evotc_service::JobError::RetriesExhausted { attempts, .. }) => {
            if *attempts != 3 {
                fail(&format!("doomed job made {attempts} attempts, expected 3"));
            }
        }
        other => fail(&format!("doomed job did not exhaust retries: {other:?}")),
    }

    // ---- Phase 5: shed / checkpoint / resume on a one-worker pool. ----
    let shed_service = Service::start(
        ServiceConfig::builder()
            .workers(1)
            .queue_capacity(16)
            .high_water(2)
            .checkpoint_interval(3)
            .cache_capacity(0)
            .build(),
    );
    let mut long = spec(5, 500);
    long.stagnation_limit = 2_000;
    long.max_evaluations = 30_000;
    let long_oracle = run_spec(&long).unwrap_or_else(|e| fail(&format!("oracle run: {e:?}")));
    let long_id = shed_service
        .submit(long)
        .unwrap_or_else(|r| fail(&format!("long job rejected: {r:?}")));
    while shed_service.running_count() == 0 {
        std::thread::yield_now();
    }
    for i in 0..4u64 {
        shed_service
            .submit(spec(6, 600 + i))
            .unwrap_or_else(|r| fail(&format!("filler rejected: {r:?}")));
    }
    let shed_outcome = shed_service.shutdown();
    if !shed_outcome.stats.accounted() {
        fail(&format!("shed wave lost jobs: {:?}", shed_outcome.stats));
    }
    let long_report = shed_outcome
        .reports
        .iter()
        .find(|r| r.id == long_id)
        .unwrap_or_else(|| fail("no report for the long job"));
    if long_report.shed_cycles == 0 {
        fail("the filler burst never shed the long job");
    }
    match &long_report.outcome {
        JobOutcome::Completed { data, .. }
            if data == &long_oracle && data.digest() == long_oracle.digest() => {}
        other => fail(&format!(
            "shed job diverged from the uninterrupted oracle: {other:?}"
        )),
    }

    let elapsed = started.elapsed();
    let mut latencies: Vec<Duration> = outcome
        .reports
        .iter()
        .chain(shed_outcome.reports.iter())
        .filter(|r| matches!(r.outcome, JobOutcome::Completed { .. }))
        .map(|r| r.latency())
        .collect();
    latencies.sort();

    ReplayNumbers {
        attempted: outcome.stats.attempted + shed_outcome.stats.attempted,
        completed_fresh: outcome.stats.completed_fresh + shed_outcome.stats.completed_fresh,
        cache_hits: outcome.stats.cache_hits + shed_outcome.stats.cache_hits,
        rejected_deadline: outcome.stats.rejected_deadline,
        rejected_other: outcome.stats.rejected_total() + shed_outcome.stats.rejected_total()
            - outcome.stats.rejected_deadline,
        failed: outcome.stats.failed + shed_outcome.stats.failed,
        retries: outcome.stats.retries + shed_outcome.stats.retries,
        sheds: outcome.stats.sheds + shed_outcome.stats.sheds,
        checkpoint_failures: outcome.stats.checkpoint_failures
            + shed_outcome.stats.checkpoint_failures,
        latencies,
        elapsed,
    }
}

fn write_json(n: &ReplayNumbers) -> String {
    let completed = n.completed_fresh + n.cache_hits;
    let p50 = percentile(&n.latencies, 50.0);
    let p95 = percentile(&n.latencies, 95.0);
    let p99 = percentile(&n.latencies, 99.0);
    let json = format!(
        "{{\n  \"bench\": \"service_replay\",\n  \"jobs\": {{\"attempted\": {}, \
         \"completed_fresh\": {}, \"cache_hits\": {}, \"failed\": {}}},\n  \
         \"rejected\": {{\"deadline_infeasible\": {}, \"other\": {}}},\n  \
         \"retries\": {},\n  \"sheds\": {},\n  \"checkpoint_failures\": {},\n  \
         \"latency\": {{\"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}},\n  \
         \"throughput_jobs_per_sec\": {:.1},\n  \"elapsed_sec\": {:.3}\n}}\n",
        n.attempted,
        n.completed_fresh,
        n.cache_hits,
        n.failed,
        n.rejected_deadline,
        n.rejected_other,
        n.retries,
        n.sheds,
        n.checkpoint_failures,
        p50.as_micros(),
        p95.as_micros(),
        p99.as_micros(),
        completed as f64 / n.elapsed.as_secs_f64(),
        n.elapsed.as_secs_f64(),
    );
    let path = "BENCH_service.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e} (numbers are above)"),
    }
    json
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check-only");
    let numbers = replay(check_only);

    let completed = numbers.completed_fresh + numbers.cache_hits;
    println!(
        "{} submissions: {} fresh, {} cache hits, {} failed, {} rejected \
         ({} infeasible-deadline); {} retries, {} sheds",
        numbers.attempted,
        numbers.completed_fresh,
        numbers.cache_hits,
        numbers.failed,
        numbers.rejected_deadline + numbers.rejected_other,
        numbers.rejected_deadline,
        numbers.retries,
        numbers.sheds,
    );
    println!(
        "latency p50 {:?} / p95 {:?} / p99 {:?}, {:.1} completed jobs/sec over {:.3}s",
        percentile(&numbers.latencies, 50.0),
        percentile(&numbers.latencies, 95.0),
        percentile(&numbers.latencies, 99.0),
        completed as f64 / numbers.elapsed.as_secs_f64(),
        numbers.elapsed.as_secs_f64(),
    );
    let json = write_json(&numbers);

    if check_only {
        // Shape gate on the artifact CI archives.
        for key in [
            "\"bench\": \"service_replay\"",
            "\"p50_us\"",
            "\"p95_us\"",
            "\"p99_us\"",
            "\"throughput_jobs_per_sec\"",
            "\"retries\"",
            "\"sheds\"",
            "\"cache_hits\"",
            "\"deadline_infeasible\"",
        ] {
            if !json.contains(key) {
                fail(&format!("BENCH_service.json is missing {key}"));
            }
        }
        let p99 = percentile(&numbers.latencies, 99.0);
        if p99 > P99_BUDGET {
            fail(&format!(
                "completed-job p99 {p99:?} exceeds the {P99_BUDGET:?} budget"
            ));
        }
        println!(
            "service_replay --check-only: OK (zero lost jobs, oracle-identical results, \
             p99 {p99:?} under budget)"
        );
    }
}
