//! The multi-objective trade-off table: per circuit, the compression /
//! scan-power / decoder-area front of one lexicographic EA run.
//!
//! Each run ranks individuals lexicographically on the minimized objective
//! vector `(encoded_bits, scan_transitions, decoder_gate_equivalents)` and
//! collects the nondominated archive of everything it evaluated (see
//! `evotc_evo::ParetoArchive`). The table reports, per circuit, the best
//! compression point (the front's head) and the lowest-scan-power point,
//! with each point's full vector — making the compression-vs-power slack
//! the paper's single-objective EA leaves behind directly visible.
//!
//! With `--checkpoint DIR` the runs are resumable: every 25 generations
//! each circuit's EA state is serialized to `DIR/<circuit>.ckpt`, and a
//! later invocation with the same flag resumes from that file instead of
//! starting over — the resumed trajectory is identical to the
//! uninterrupted one (the engine's checkpoint contract), so the printed
//! table does not depend on how often the run was interrupted. A stale
//! checkpoint (different profile, seed, or genome shape) is detected via
//! its configuration fingerprint and ignored with a warning; write
//! failures are counted on the run, not fatal.
//!
//! Usage: `cargo run -p evotc_bench --bin tradeoff --release [-- --full] [--threads N] [--checkpoint DIR] [circuit…]`

use evotc_bench::{circuit_filter, RunProfile};
use evotc_bits::{BlockHistogram, TestSetString, Trit};
use evotc_core::{trit_checkpoint_from_bytes, trit_checkpoint_to_bytes, CombineMode, MvFitness};
use evotc_evo::{
    config_fingerprint, CheckpointError, EaBuilder, EaCheckpoint, EaConfig, ParetoPoint,
};
use evotc_workloads::tables::TABLE1;
use rand::rngs::StdRng;
use rand::Rng;
use std::path::{Path, PathBuf};

/// EA shape for the trade-off runs: the paper's block length with a
/// mid-size MV budget so quick mode stays interactive.
const K: usize = 12;
const L: usize = 32;
/// Reported front bound (the archive keeps the exact front internally).
const FRONT_CAPACITY: usize = 32;

struct TradeoffRow {
    circuit: String,
    bits: usize,
    /// Uncompressed payload bits at block length `K` — the rate denominator.
    payload_bits: f64,
    front: Vec<ParetoPoint<Trit>>,
}

/// Compression rate (%) of an encoded-bits objective value.
fn rate(bits: f64, encoded: f64) -> f64 {
    100.0 * (bits - encoded) / bits
}

/// How often a resumable run snapshots its state (generations).
const CHECKPOINT_EVERY: u64 = 25;

fn run_circuit(
    circuit: &str,
    histogram: &BlockHistogram,
    bits: f64,
    profile: &RunProfile,
    checkpoint_dir: Option<&Path>,
) -> Vec<ParetoPoint<Trit>> {
    let fitness = MvFitness::new(K, true, histogram, bits).combine_mode(CombineMode::Lexicographic);
    let config = EaConfig::builder()
        .stagnation_limit(profile.stagnation_limit)
        .max_evaluations(profile.max_evaluations)
        .seed(1)
        .threads(profile.threads)
        .lexicographic()
        .pareto_archive(FRONT_CAPACITY)
        .build();
    let mut builder = EaBuilder::new(
        K * L,
        |rng: &mut StdRng| Trit::from_index(rng.gen_range(0..3u8)),
        fitness,
    )
    .config(config.clone());
    if let Some(dir) = checkpoint_dir {
        let path = dir.join(format!("{circuit}.ckpt"));
        // Resume only from a checkpoint this exact run shape produced; a
        // stale or foreign file means a fresh start, never a wrong result.
        if let Ok(bytes) = std::fs::read(&path) {
            match trit_checkpoint_from_bytes(&bytes) {
                Ok(cp) if cp.config_fingerprint == config_fingerprint(&config, K * L) => {
                    eprintln!(
                        "  resuming from {} (generation {})",
                        path.display(),
                        cp.generation
                    );
                    builder = builder.resume_from(cp);
                }
                Ok(_) => eprintln!(
                    "  ignoring {}: checkpoint from a different configuration",
                    path.display()
                ),
                Err(e) => eprintln!("  ignoring {}: {e}", path.display()),
            }
        }
        builder = builder.checkpoint_every(CHECKPOINT_EVERY, move |cp: &EaCheckpoint<Trit>| {
            std::fs::write(&path, trit_checkpoint_to_bytes(cp))
                .map_err(|e| CheckpointError::Io(e.to_string()))
        });
    }
    let result = builder.run();
    if result.checkpoint_failures > 0 {
        eprintln!(
            "  warning: {} checkpoint write(s) failed for {circuit}; the run is unaffected",
            result.checkpoint_failures
        );
    }
    assert!(
        !result.pareto_front.is_empty(),
        "{circuit}: a feasible run must archive at least one point"
    );
    result.pareto_front
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(dir) = args[i].strip_prefix("--checkpoint=") {
            checkpoint_dir = Some(PathBuf::from(dir));
            args.remove(i);
        } else if args[i] == "--checkpoint" {
            args.remove(i);
            if i >= args.len() {
                eprintln!("--checkpoint expects a directory");
                std::process::exit(2);
            }
            checkpoint_dir = Some(PathBuf::from(args.remove(i)));
        } else {
            i += 1;
        }
    }
    if let Some(dir) = &checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create checkpoint directory {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let profile = RunProfile::from_args(args.iter().cloned());
    let filter = circuit_filter(&args);

    let selected: Vec<_> = TABLE1
        .iter()
        .filter(|row| filter.is_empty() || filter.iter().any(|f| *f == row.circuit))
        .collect();
    let threads = evotc_evo::parallel::resolve_threads(profile.threads);
    let sets = evotc_workloads::stuck_at_workloads(&selected, 1, profile.size_limit, threads);

    let mut rows = Vec::new();
    for (row, set) in selected.iter().zip(&sets) {
        eprintln!("running {} ({} bits)…", row.circuit, set.total_bits());
        let string = TestSetString::try_new(set, K).expect("K=12 fits every Table 1 workload");
        let bits = string.payload_bits() as f64;
        let histogram = BlockHistogram::from_string(&string);
        rows.push(TradeoffRow {
            circuit: row.circuit.to_string(),
            bits: set.total_bits(),
            payload_bits: bits,
            front: run_circuit(
                row.circuit,
                &histogram,
                bits,
                &profile,
                checkpoint_dir.as_deref(),
            ),
        });
    }

    println!("# Compression / scan-power / decoder-area trade-off (K={K}, L={L})\n");
    println!(
        "| circuit | bits | front | best rate % | transitions | area GE | \
         low-power rate % | transitions | area GE |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for row in &rows {
        // The front is sorted by encoded bits first, so its head is the
        // best-compression point; the power extreme minimizes transitions.
        let best = &row.front[0];
        let low_power = row
            .front
            .iter()
            .min_by(|a, b| a.objectives.values()[1].total_cmp(&b.objectives.values()[1]))
            .expect("front is non-empty");
        let [b0, b1, b2] = best.objectives.values();
        let [p0, p1, p2] = low_power.objectives.values();
        println!(
            "| {} | {} | {} | {:.1} | {:.0} | {:.0} | {:.1} | {:.0} | {:.0} |",
            row.circuit,
            row.bits,
            row.front.len(),
            rate(row.payload_bits, b0),
            b1,
            b2,
            rate(row.payload_bits, p0),
            p1,
            p2,
        );
    }
    println!(
        "\nAll runs: lexicographic ranking (compression, then scan power, then \
         decoder area), archive bound {FRONT_CAPACITY}, seed 1. Deterministic \
         for any `--threads` value."
    );
}
