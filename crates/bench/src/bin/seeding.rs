//! Ablation C: 9C-seeded initial population — the paper's remark that the
//! EA's loss on s838 "could be ruled out by adding the 9C matching vector
//! set to the initial population (which we did not)" (Section 4).
//!
//! Usage: `cargo run -p evotc-bench --bin seeding --release [-- --full]`

use evotc_bench::RunProfile;
use evotc_core::{EaCompressor, NineCHuffmanCompressor, TestCompressor};
use evotc_workloads::tables::stuck_at_row;
use evotc_workloads::workload_with_limit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let profile = RunProfile::from_args(args.iter().cloned());
    println!("# Ablation C — 9C seeding of the initial population\n");
    println!("| circuit | 9C+HC | EA unseeded | EA 9C-seeded |");
    println!("|---|---:|---:|---:|");
    for circuit in ["s838", "s420", "s444"] {
        let row = stuck_at_row(circuit).expect("circuit is in Table 1");
        let set = workload_with_limit(
            row.circuit,
            row.test_set_bits,
            row.rate_9c,
            1,
            profile.size_limit,
            1,
        );
        let hc = NineCHuffmanCompressor::new(8)
            .compress(&set)
            .map(|c| c.rate_percent())
            .unwrap_or(f64::NEG_INFINITY);
        let build = |seeded: bool| {
            EaCompressor::builder(8, 16)
                .seed(1)
                .stagnation_limit(profile.stagnation_limit)
                .max_evaluations(profile.max_evaluations)
                .seed_ninec(seeded)
                .build()
                .compress(&set)
                .map(|c| c.rate_percent())
                .unwrap_or(f64::NEG_INFINITY)
        };
        println!(
            "| {circuit} | {hc:.1} | {:.1} | {:.1} |",
            build(false),
            build(true)
        );
    }
    println!("\nSeeding guarantees the EA starts at least as good as 9C+HC.");
}
