//! Quick fitness-kernel perf smoke: measures evaluations/second of the
//! legacy fitness path vs the allocation-free bit-sliced kernel at the
//! paper-default shape (K=12, L=64, shared `fitness_fixture` workload) and
//! writes `BENCH_fitness.json` so the repo carries a perf trajectory across
//! PRs.
//!
//! Runs in a few seconds ("quick mode"). In CI the correctness gate runs
//! gating (`--check-only`) and the timed run is a separate non-gating step:
//! a slow shared runner must not fail the build, but a bitwise
//! kernel-vs-legacy divergence must. Locally:
//!
//! ```text
//! cargo run --release -p evotc_bench --bin fitness_smoke
//! ```
//!
//! Exits non-zero only if the two paths disagree on any genome (a
//! correctness failure, not a perf one).

use std::time::{Duration, Instant};

use evotc_bench::fitness_fixture::{paper_histogram, random_genomes, BLOCK_LEN, NUM_MVS};
use evotc_core::{EvalScratch, MvFitness};
use evotc_evo::FitnessEval;

const GENOMES: usize = 128;
/// Wall-clock budget per measured path; quick mode stays CI-friendly.
const MEASURE: Duration = Duration::from_millis(1500);

/// Runs `eval_all` repeatedly for the budget and returns evaluations/sec.
fn throughput(mut eval_all: impl FnMut() -> f64) -> f64 {
    // Warm-up pass (first-touch allocations, cold caches).
    std::hint::black_box(eval_all());
    let start = Instant::now();
    let mut evals = 0u64;
    while start.elapsed() < MEASURE {
        std::hint::black_box(eval_all());
        evals += GENOMES as u64;
    }
    evals as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check-only");
    let (histogram, payload_bits) = paper_histogram();
    let fitness = MvFitness::new(BLOCK_LEN, true, &histogram, payload_bits);
    let genomes = random_genomes(GENOMES, BLOCK_LEN * NUM_MVS, 42);

    // Correctness gate first: bit-identical fitness on every genome.
    let mut scratch = EvalScratch::new();
    for g in &genomes {
        let legacy = fitness.evaluate(g);
        let kernel = fitness.evaluate_scratch(g, &mut scratch);
        if legacy.to_bits() != kernel.to_bits() {
            eprintln!("FAIL: kernel {kernel} != legacy {legacy}");
            std::process::exit(1);
        }
    }
    if check_only {
        println!("fitness kernel == legacy on {GENOMES} genomes (K={BLOCK_LEN}, L={NUM_MVS})");
        return;
    }

    let legacy_eps = throughput(|| genomes.iter().map(|g| fitness.evaluate(g)).sum());
    let mut scratch = EvalScratch::new();
    let kernel_eps = throughput(|| {
        genomes
            .iter()
            .map(|g| fitness.evaluate_scratch(g, &mut scratch))
            .sum()
    });
    let speedup = kernel_eps / legacy_eps;

    println!("workload           : s953 (K={BLOCK_LEN}, L={NUM_MVS})");
    println!("distinct blocks    : {}", histogram.num_distinct());
    println!("legacy eval/s      : {legacy_eps:.0}");
    println!("kernel eval/s      : {kernel_eps:.0}");
    println!("speedup            : {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"fitness_kernel\",\n  \"workload\": \"s953\",\n  \"k\": {k},\n  \"l\": {l},\n  \"distinct_blocks\": {distinct},\n  \"genomes\": {genomes},\n  \"legacy_evals_per_sec\": {legacy:.0},\n  \"kernel_evals_per_sec\": {kernel:.0},\n  \"speedup\": {speedup:.2}\n}}\n",
        k = BLOCK_LEN,
        l = NUM_MVS,
        distinct = histogram.num_distinct(),
        genomes = GENOMES,
        legacy = legacy_eps,
        kernel = kernel_eps,
        speedup = speedup,
    );
    let path = "BENCH_fitness.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e} (numbers are above)"),
    }
}
