//! Quick fitness-kernel perf smoke: measures evaluations/second of the
//! legacy fitness path, the allocation-free bit-sliced kernel, and the
//! incremental (cache-patching) path under mutation-chain, inversion-chain
//! and crossover workloads — all at the paper-default shape (K=12, L=64,
//! shared `fitness_fixture` workload) — plus the whole-run `evals/sec` of a
//! real EA and the multi-objective vector path
//! (`multiobjective_evals_per_sec`), and writes `BENCH_fitness.json` so the
//! repo carries a perf trajectory across PRs. The correctness gates cover
//! the objective vector too: kernel side-channel objectives vs the
//! covering oracle on every genome, and the incrementally patched
//! transition count vs the full recompute on every chain step and
//! multi-chunk child.
//!
//! The incremental workloads cover the operator mix of the paper's EA in
//! its steady state: single-gene mutation chains (one changed MV chunk per
//! child), and multi-chunk child streams probed read-only against one
//! cached *evolved* parent — exactly how the engine's shared parent cache
//! prices a generation's children. The multi-chunk stream mixes crossover
//! and inversion children 3:1 (the paper's 0.30/0.10 operator
//! probabilities) with edit windows spanning 2–5 MV chunks; crossover
//! partners are drawn from a converged population (the evolved individual a
//! few point mutations apart), which is what selection actually breeds from
//! after the first generations. Pure-crossover and pure-inversion streams
//! are measured separately as well — inversion children genuinely rewrite
//! every chunk their window touches, so they bound the patch path's worst
//! case, while crossover children against converged parents bound its best.
//!
//! Runs in a few seconds ("quick mode"). In CI the correctness gate runs
//! gating (`--check-only`) and the timed run is a separate non-gating step:
//! a slow shared runner must not fail the build, but a bitwise divergence
//! between any two paths must. Locally:
//!
//! ```text
//! cargo run --release -p evotc_bench --bin fitness_smoke
//! ```
//!
//! Exits non-zero only if the paths disagree on any genome or chain step (a
//! correctness failure, not a perf one).

use std::ops::Range;
use std::time::{Duration, Instant};

use evotc_bench::fitness_fixture::{paper_histogram, random_genomes, BLOCK_LEN, NUM_MVS};
use evotc_bits::{SlicedHistogram, Trit};
use evotc_core::{
    encoded_size_probe, encoded_size_rebuild, encoded_size_scratch, EvalCache, EvalScratch,
    IncrementalOutcome, MvFitness, PatchScratch,
};
use evotc_core::{trit_checkpoint_from_bytes, trit_checkpoint_to_bytes};
use evotc_evo::{EaBuilder, EaCheckpoint, EaConfig, FitnessEval};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GENOMES: usize = 128;
/// Steps per chain workload (mutation, inversion, crossover alike).
const CHAIN_LEN: usize = 256;
/// Wall-clock budget per measured path; quick mode stays CI-friendly.
const MEASURE: Duration = Duration::from_millis(1500);
/// The fixture's genome length.
const GENOME_LEN: usize = BLOCK_LEN * NUM_MVS;

/// A deterministic single-gene mutation chain: the genomes the EA would see
/// when each child is its predecessor with one redrawn gene.
fn mutation_chain(start: &[Trit], steps: usize, seed: u64) -> Vec<(usize, Vec<Trit>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome = start.to_vec();
    let mut chain = Vec::with_capacity(steps);
    for _ in 0..steps {
        let pos = rng.gen_range(0..genome.len());
        genome[pos] = Trit::from_index(rng.gen_range(0..3u8));
        chain.push((pos, genome.clone()));
    }
    chain
}

/// A random edit window spanning 2..=5 MV chunks (length `K+1 ..= 4K`
/// genes guarantees at least two chunks are overlapped, aligned or not) —
/// the multi-chunk shape the paper's crossover/inversion operators produce.
fn multichunk_window(rng: &mut StdRng) -> Range<usize> {
    let span = rng.gen_range(BLOCK_LEN + 1..=4 * BLOCK_LEN);
    let start = rng.gen_range(0..=GENOME_LEN - span);
    start..start + span
}

/// The operator of one multi-chunk stream child.
#[derive(Clone, Copy, PartialEq)]
enum MultiOp {
    /// Swap the window's content in from a partner (paper p = 0.30).
    Crossover,
    /// Reverse the window in place (paper p = 0.10).
    Inversion,
}

/// A deterministic stream of multi-chunk children of one fixed parent —
/// the genomes the engine probes read-only against the cached parent in
/// one steady-state generation. `ops` cycles over the operator pattern
/// (e.g. 3 crossovers per inversion, the paper's 0.30/0.10 ratio).
fn multichunk_children(
    parent: &[Trit],
    partners: &[Vec<Trit>],
    ops: &[MultiOp],
    steps: usize,
    seed: u64,
) -> Vec<(Range<usize>, Vec<Trit>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..steps)
        .map(|t| {
            let window = multichunk_window(&mut rng);
            let mut child = parent.to_vec();
            match ops[t % ops.len()] {
                MultiOp::Crossover => {
                    let partner = &partners[t % partners.len()];
                    child[window.clone()].copy_from_slice(&partner[window.clone()]);
                }
                MultiOp::Inversion => child[window.clone()].reverse(),
            }
            (window, child)
        })
        .collect()
}

/// The steady-state fixture: an individual evolved on the workload (a
/// short, deterministic EA run) plus a converged population around it —
/// the evolved genome a few point mutations apart, which is what `(S+C)`
/// truncation selection actually keeps after the first generations.
fn evolved_parent_and_partners(
    histogram: &evotc_bits::BlockHistogram,
    payload_bits: f64,
) -> (Vec<Trit>, Vec<Vec<Trit>>) {
    let fitness = MvFitness::new(BLOCK_LEN, true, histogram, payload_bits);
    let config = EaConfig::builder()
        .stagnation_limit(usize::MAX)
        .max_evaluations(4_000)
        .seed(5)
        .threads(1)
        .build();
    let evolved = EaBuilder::new(
        GENOME_LEN,
        |rng: &mut StdRng| Trit::from_index(rng.gen_range(0..3u8)),
        fitness,
    )
    .config(config)
    .run()
    .best_genome;
    let mut rng = StdRng::seed_from_u64(99);
    let partners = (0..7)
        .map(|_| {
            let mut g = evolved.clone();
            for _ in 0..6 {
                let pos = rng.gen_range(0..g.len());
                g[pos] = Trit::from_index(rng.gen_range(0..3u8));
            }
            g
        })
        .collect();
    (evolved, partners)
}

/// Runs `eval_all` (which claims `per_pass` evaluations) repeatedly for the
/// budget and returns evaluations/sec.
fn throughput(per_pass: u64, mut eval_all: impl FnMut() -> f64) -> f64 {
    // Warm-up pass (first-touch allocations, cold caches).
    std::hint::black_box(eval_all());
    let start = Instant::now();
    let mut evals = 0u64;
    while start.elapsed() < MEASURE {
        std::hint::black_box(eval_all());
        evals += per_pass;
    }
    evals as f64 / start.elapsed().as_secs_f64()
}

fn fail(message: &str) -> ! {
    eprintln!("FAIL: {message}");
    std::process::exit(1);
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check-only");
    let (histogram, payload_bits) = paper_histogram();
    let fitness = MvFitness::new(BLOCK_LEN, true, &histogram, payload_bits);
    let sliced = SlicedHistogram::from_histogram(&histogram);
    let genomes = random_genomes(GENOMES, GENOME_LEN, 42);

    // Correctness gate 1: bit-identical fitness, kernel vs legacy, on every
    // random genome — and the full objective vector (encoded bits, scan
    // transitions, decoder gate equivalents) must match between the
    // kernel's side-channels and the covering-based oracle.
    let mut scratch = EvalScratch::new();
    for g in &genomes {
        let (legacy, oracle_objectives) = fitness.evaluate_oracle(g);
        let (kernel, kernel_objectives) = fitness.evaluate_with_objectives(g, &mut scratch);
        if legacy.to_bits() != kernel.to_bits() {
            fail(&format!("kernel {kernel} != legacy {legacy}"));
        }
        if oracle_objectives != kernel_objectives {
            fail(&format!(
                "kernel objectives {kernel_objectives:?} != oracle {oracle_objectives:?}"
            ));
        }
    }

    // Correctness gate 2: the incremental path must match the full kernel
    // bit-for-bit on every step of a single-gene mutation chain.
    let chain = mutation_chain(&genomes[0], CHAIN_LEN, 7);
    let mut cache = EvalCache::new();
    let seed_fitness = fitness.evaluate_cached(&genomes[0], None, &mut cache);
    if seed_fitness.to_bits()
        != fitness
            .evaluate_scratch(&genomes[0], &mut scratch)
            .to_bits()
    {
        fail("incremental rebuild diverged on the chain seed");
    }
    for (step, (pos, genome)) in chain.iter().enumerate() {
        let incremental = fitness.evaluate_cached(genome, Some(&(*pos..pos + 1)), &mut cache);
        let full = fitness.evaluate_scratch(genome, &mut scratch);
        if incremental.to_bits() != full.to_bits() {
            fail(&format!(
                "incremental {incremental} != full {full} at mutation-chain step {step}"
            ));
        }
        // The incrementally patched transition objective must equal the
        // full recompute exactly, at every step of the chain.
        if full != MvFitness::INFEASIBLE
            && cache.scan_transitions() != scratch.last_scan_transitions()
        {
            fail(&format!(
                "incremental transitions {} != full {} at mutation-chain step {step}",
                cache.scan_transitions(),
                scratch.last_scan_transitions()
            ));
        }
    }

    // Correctness gate 3:  the multi-chunk probe path must match the full
    // kernel bit-for-bit on every child of the steady-state streams —
    // mixed crossover/inversion, pure crossover, and pure inversion —
    // priced read-only against the cached evolved parent, exactly as the
    // engine's shared parent cache prices a generation.
    let (evolved, partners) = evolved_parent_and_partners(&histogram, payload_bits);
    let mixed_ops = [
        MultiOp::Crossover,
        MultiOp::Crossover,
        MultiOp::Crossover,
        MultiOp::Inversion,
    ];
    let mixed = multichunk_children(&evolved, &partners, &mixed_ops, CHAIN_LEN, 11);
    let crossover = multichunk_children(&evolved, &partners, &[MultiOp::Crossover], CHAIN_LEN, 13);
    let inversion = multichunk_children(&evolved, &partners, &[MultiOp::Inversion], CHAIN_LEN, 17);
    let mut parent_cache = EvalCache::new();
    encoded_size_rebuild(&sliced, &evolved, true, &mut parent_cache);
    let mut patch = PatchScratch::new();
    for (name, stream) in [
        ("mixed", &mixed),
        ("crossover", &crossover),
        ("inversion", &inversion),
    ] {
        for (step, (window, child)) in stream.iter().enumerate() {
            let probe = encoded_size_probe(&sliced, child, true, window, &parent_cache, &mut patch);
            let full = encoded_size_scratch(&sliced, child, true, &mut scratch);
            if probe != IncrementalOutcome::Size(full) {
                fail(&format!(
                    "{name} probe {probe:?} != full {full:?} at child {step} (window {window:?})"
                ));
            }
            if full.is_some()
                && (patch.last_scan_transitions() != scratch.last_scan_transitions()
                    || patch.last_used_mvs() != scratch.last_used_mvs())
            {
                fail(&format!(
                    "{name} patched objectives (t={}, used={}) != full (t={}, used={}) \
                     at child {step}",
                    patch.last_scan_transitions(),
                    patch.last_used_mvs(),
                    scratch.last_scan_transitions(),
                    scratch.last_used_mvs()
                ));
            }
        }
    }
    // Correctness gate 4: an island-topology run must be byte-identical for
    // every thread count at a fixed seed — the engine's determinism contract
    // extended from fitness batches to whole runs.
    let island_run = |threads: usize| {
        let config = EaConfig::builder()
            .stagnation_limit(usize::MAX)
            .max_evaluations(3_000)
            .islands(4, 5, 2)
            .seed(3)
            .threads(threads)
            .build();
        EaBuilder::new(
            GENOME_LEN,
            |rng: &mut StdRng| Trit::from_index(rng.gen_range(0..3u8)),
            MvFitness::new(BLOCK_LEN, true, &histogram, payload_bits),
        )
        .config(config)
        .run()
    };
    let island_ref = island_run(1);
    for threads in [2, 4] {
        let other = island_run(threads);
        if other.best_genome != island_ref.best_genome
            || other.best_fitness.to_bits() != island_ref.best_fitness.to_bits()
            || other.generations != island_ref.generations
            || other.evaluations != island_ref.evaluations
        {
            fail(&format!(
                "island run diverged between threads=1 and threads={threads}"
            ));
        }
    }

    // Correctness gate 5: interrupting the island run at any periodic
    // checkpoint and resuming through the serialized trit byte codec must
    // reproduce the uninterrupted run exactly — the robustness contract
    // the engine's proptests gate, re-checked here on the paper workload.
    let ckpt_config = EaConfig::builder()
        .stagnation_limit(usize::MAX)
        .max_evaluations(3_000)
        .islands(4, 5, 2)
        .seed(3)
        .threads(2)
        .build();
    let ckpt_run = |resume: Option<evotc_evo::EaCheckpoint<Trit>>,
                    blobs: Option<&std::cell::RefCell<Vec<Vec<u8>>>>| {
        let mut builder = EaBuilder::new(
            GENOME_LEN,
            |rng: &mut StdRng| Trit::from_index(rng.gen_range(0..3u8)),
            MvFitness::new(BLOCK_LEN, true, &histogram, payload_bits),
        )
        .config(ckpt_config.clone());
        if let Some(checkpoint) = resume {
            builder = builder.resume_from(checkpoint);
        }
        if let Some(blobs) = blobs {
            builder = builder.checkpoint_every(5, move |cp: &EaCheckpoint<Trit>| {
                blobs.borrow_mut().push(trit_checkpoint_to_bytes(cp));
                Ok(())
            });
        }
        builder.run()
    };
    let blobs = std::cell::RefCell::new(Vec::new());
    let ckpt_reference = ckpt_run(None, Some(&blobs));
    let blobs = blobs.into_inner();
    if blobs.is_empty() {
        fail("island run produced no periodic checkpoints");
    }
    for (k, blob) in blobs.iter().enumerate() {
        let checkpoint = match trit_checkpoint_from_bytes(blob) {
            Ok(checkpoint) => checkpoint,
            Err(e) => fail(&format!("checkpoint {k} failed to round-trip: {e}")),
        };
        let resumed = ckpt_run(Some(checkpoint), None);
        if resumed.best_genome != ckpt_reference.best_genome
            || resumed.best_fitness.to_bits() != ckpt_reference.best_fitness.to_bits()
            || resumed.generations != ckpt_reference.generations
            || resumed.evaluations != ckpt_reference.evaluations
        {
            fail(&format!(
                "resume from checkpoint {k} diverged from the uninterrupted run"
            ));
        }
    }

    if check_only {
        println!(
            "fitness kernel == legacy on {GENOMES} genomes (objective vectors \
             included); incremental == full on a {CHAIN_LEN}-step mutation chain \
             and on {CHAIN_LEN}-child multi-chunk crossover/inversion streams, \
             transition objective included; island runs thread-invariant and \
             checkpoint/resume-exact through the byte codec \
             (K={BLOCK_LEN}, L={NUM_MVS})"
        );
        return;
    }

    let legacy_eps = throughput(GENOMES as u64, || {
        genomes.iter().map(|g| fitness.evaluate(g)).sum()
    });
    let mut scratch = EvalScratch::new();
    let kernel_eps = throughput(GENOMES as u64, || {
        genomes
            .iter()
            .map(|g| fitness.evaluate_scratch(g, &mut scratch))
            .sum()
    });
    let speedup = kernel_eps / legacy_eps;

    // The multi-objective surface: same kernel pass, but returning the full
    // (encoded bits, transitions, area) vector. The transition and used-MV
    // side-channels ride the covering scan and area is a closed form, so
    // this should track `kernel_evals_per_sec` closely; the ratio makes the
    // overhead of the vector path visible across PRs.
    let multiobjective_eps = throughput(GENOMES as u64, || {
        genomes
            .iter()
            .map(|g| fitness.evaluate_with_objectives(g, &mut scratch).0)
            .sum()
    });
    let multiobjective_overhead = kernel_eps / multiobjective_eps;

    // The mutation workload: one full evaluation to seed the cache, then
    // CHAIN_LEN single-gene children priced from deltas. The full-kernel
    // reference prices exactly the same genomes from scratch.
    let per_pass = (CHAIN_LEN + 1) as u64;
    let mut scratch = EvalScratch::new();
    let full_chain_eps = throughput(per_pass, || {
        let mut acc = fitness.evaluate_scratch(&genomes[0], &mut scratch);
        for (_, genome) in &chain {
            acc += fitness.evaluate_scratch(genome, &mut scratch);
        }
        acc
    });
    let mut cache = EvalCache::new();
    let incremental_eps = throughput(per_pass, || {
        let mut acc = fitness.evaluate_cached(&genomes[0], None, &mut cache);
        for (pos, genome) in &chain {
            acc += fitness.evaluate_cached(genome, Some(&(*pos..pos + 1)), &mut cache);
        }
        acc
    });
    let incremental_speedup = incremental_eps / full_chain_eps;

    // The multi-chunk streams: one parent rebuild, then CHAIN_LEN children
    // probed read-only off the cached parent — the shared-cache steady
    // state. The full-kernel reference prices exactly the same children
    // from scratch.
    let measure_stream = |stream: &[(Range<usize>, Vec<Trit>)]| {
        let mut scratch = EvalScratch::new();
        let full_eps = throughput(per_pass, || {
            let mut acc = encoded_size_scratch(&sliced, &evolved, true, &mut scratch)
                .unwrap_or_default() as f64;
            for (_, child) in stream {
                acc += encoded_size_scratch(&sliced, child, true, &mut scratch).unwrap_or_default()
                    as f64;
            }
            acc
        });
        let mut parent_cache = EvalCache::new();
        let mut patch = PatchScratch::new();
        let inc_eps = throughput(per_pass, || {
            let mut acc = encoded_size_rebuild(&sliced, &evolved, true, &mut parent_cache)
                .unwrap_or_default() as f64;
            for (window, child) in stream {
                if let IncrementalOutcome::Size(size) =
                    encoded_size_probe(&sliced, child, true, window, &parent_cache, &mut patch)
                {
                    acc += size.unwrap_or_default() as f64;
                }
            }
            acc
        });
        (full_eps, inc_eps, inc_eps / full_eps)
    };
    let (mixed_full_eps, mixed_inc_eps, multichunk_speedup) = measure_stream(&mixed);
    let (cross_full_eps, cross_inc_eps, crossover_speedup) = measure_stream(&crossover);
    let (inv_full_eps, inv_inc_eps, inversion_speedup) = measure_stream(&inversion);

    // Whole-run throughput: a real EA over the same histogram, full
    // operator mix, incremental path and shared parent cache on — against
    // the identical run with the lineage hook disabled (plain batch, full
    // kernel for every child). This is the number the chain microbenches
    // exist to move.
    struct NoLineage<'a>(MvFitness<'a>);
    impl FitnessEval<Trit> for NoLineage<'_> {
        fn evaluate(&self, genes: &[Trit]) -> f64 {
            self.0.evaluate(genes)
        }
        fn evaluate_batch(&self, genomes: &[Vec<Trit>], out: &mut [f64]) {
            self.0.evaluate_batch(genomes, out);
        }
        // No lineage override: children take the full kernel.
    }
    let ea_config = EaConfig::builder()
        .population_size(10)
        .children_per_generation(5)
        .stagnation_limit(usize::MAX)
        .max_evaluations(20_000)
        .seed(3)
        .threads(1)
        .build();
    let sample = |rng: &mut StdRng| Trit::from_index(rng.gen_range(0..3u8));
    // Whole-run timings are single ~50 ms runs, so a noisy shared runner
    // can distort any one of them badly; each run is repeated and the best
    // throughput kept (the usual min-time estimator — the runs are
    // deterministic, so they only differ by scheduler interference).
    const EA_RUNS: usize = 5;
    let best_of = |run: &dyn Fn() -> evotc_evo::EaResult<Trit>| {
        let mut best = run();
        for _ in 1..EA_RUNS {
            let next = run();
            if next.evaluations_per_sec() > best.evaluations_per_sec() {
                best = next;
            }
        }
        best
    };
    let result = best_of(&|| {
        EaBuilder::new(GENOME_LEN, sample, fitness.clone())
            .config(ea_config.clone())
            .run()
    });
    let baseline = best_of(&|| {
        EaBuilder::new(GENOME_LEN, sample, NoLineage(fitness.clone()))
            .config(ea_config.clone())
            .run()
    });
    if result.best_fitness.to_bits() != baseline.best_fitness.to_bits() {
        fail("lineage cache changed the EA result");
    }
    let ea_eps = result.evaluations_per_sec();
    let ea_full_eps = baseline.evaluations_per_sec();
    let ea_speedup = ea_eps / ea_full_eps;
    let ea_cache = result.cache.unwrap_or_default();

    // Island-model throughput: the same budget split over per-thread
    // subpopulations (auto thread count), ring migration every 10
    // generations — the whole-run scaling mode. Per-island breeding and
    // evaluation are serial within an island, so the scaling comes from
    // islands running concurrently.
    let island_config = EaConfig::builder()
        .population_size(10)
        .children_per_generation(5)
        .stagnation_limit(usize::MAX)
        .max_evaluations(20_000)
        .islands(4, 10, 2)
        .seed(3)
        .build();
    let island = best_of(&|| {
        EaBuilder::new(GENOME_LEN, sample, fitness.clone())
            .config(island_config.clone())
            .run()
    });
    let ea_island_eps = island.evaluations_per_sec();
    let ea_island_scaling = ea_island_eps / ea_eps;

    // Checkpoint cost, on a real mid-run island checkpoint from gate 5:
    // serialize/deserialize latency through the trit byte codec (min-time
    // over repeats), and the steady-state overhead of running the EA with
    // `checkpoint_every(10)` and a serializing sink versus the identical
    // run without one.
    let min_time_us = |f: &mut dyn FnMut()| {
        f(); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..200 {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        best
    };
    let sample_blob = blobs.last().expect("gate 5 checked blobs is non-empty");
    let sample_checkpoint =
        trit_checkpoint_from_bytes(sample_blob).expect("gate 5 round-tripped this blob");
    let checkpoint_save_us = min_time_us(&mut || {
        std::hint::black_box(trit_checkpoint_to_bytes(&sample_checkpoint));
    });
    let checkpoint_resume_us = min_time_us(&mut || {
        std::hint::black_box(trit_checkpoint_from_bytes(sample_blob).unwrap());
    });
    let checkpointed = best_of(&|| {
        EaBuilder::new(GENOME_LEN, sample, fitness.clone())
            .config(ea_config.clone())
            .checkpoint_every(10, |cp: &EaCheckpoint<Trit>| {
                std::hint::black_box(trit_checkpoint_to_bytes(cp));
                Ok(())
            })
            .run()
    });
    let checkpoint_overhead_pct = (ea_eps / checkpointed.evaluations_per_sec() - 1.0) * 100.0;

    println!("workload               : s953 (K={BLOCK_LEN}, L={NUM_MVS})");
    println!("distinct blocks        : {}", histogram.num_distinct());
    println!("legacy eval/s          : {legacy_eps:.0}");
    println!("kernel eval/s          : {kernel_eps:.0}");
    println!("speedup                : {speedup:.2}x");
    println!("multiobjective eval/s  : {multiobjective_eps:.0}");
    println!("multiobjective ovhd    : {multiobjective_overhead:.2}x");
    println!("chain length           : {CHAIN_LEN}");
    println!("full-chain eval/s      : {full_chain_eps:.0}");
    println!("incremental eval/s     : {incremental_eps:.0}");
    println!("incremental speedup    : {incremental_speedup:.2}x");
    println!("multichunk full eval/s : {mixed_full_eps:.0}");
    println!("multichunk eval/s      : {mixed_inc_eps:.0}");
    println!("multichunk speedup     : {multichunk_speedup:.2}x");
    println!("crossover full eval/s  : {cross_full_eps:.0}");
    println!("crossover eval/s       : {cross_inc_eps:.0}");
    println!("crossover speedup      : {crossover_speedup:.2}x");
    println!("inversion full eval/s  : {inv_full_eps:.0}");
    println!("inversion eval/s       : {inv_inc_eps:.0}");
    println!("inversion speedup      : {inversion_speedup:.2}x");
    println!("EA eval/s (cache on)   : {ea_eps:.0}");
    println!("EA eval/s (cache off)  : {ea_full_eps:.0}");
    println!("EA whole-run speedup   : {ea_speedup:.2}x");
    println!("EA cache counters      : {ea_cache}");
    println!("EA island eval/s       : {ea_island_eps:.0}");
    println!("EA island scaling      : {ea_island_scaling:.2}x");
    println!("checkpoint save        : {checkpoint_save_us:.1} us");
    println!("checkpoint resume      : {checkpoint_resume_us:.1} us");
    println!("checkpoint overhead    : {checkpoint_overhead_pct:.2}% (every 10 generations)");

    let json = format!(
        "{{\n  \"bench\": \"fitness_kernel\",\n  \"workload\": \"s953\",\n  \"k\": {k},\n  \
         \"l\": {l},\n  \"distinct_blocks\": {distinct},\n  \"genomes\": {genomes},\n  \
         \"legacy_evals_per_sec\": {legacy:.0},\n  \"kernel_evals_per_sec\": {kernel:.0},\n  \
         \"speedup\": {speedup:.2},\n  \
         \"multiobjective_evals_per_sec\": {multiobjective:.0},\n  \
         \"multiobjective_overhead\": {multiobjective_overhead:.2},\n  \
         \"chain_len\": {chain_len},\n  \
         \"full_chain_evals_per_sec\": {full_chain:.0},\n  \
         \"incremental_evals_per_sec\": {incremental:.0},\n  \
         \"incremental_speedup\": {inc_speedup:.2},\n  \
         \"multichunk_full_evals_per_sec\": {mixed_full:.0},\n  \
         \"multichunk_evals_per_sec\": {mixed_inc:.0},\n  \
         \"multichunk_speedup\": {mixed_speedup:.2},\n  \
         \"crossover_full_evals_per_sec\": {cross_full:.0},\n  \
         \"crossover_evals_per_sec\": {cross_inc:.0},\n  \
         \"crossover_speedup\": {cross_speedup:.2},\n  \
         \"inversion_full_evals_per_sec\": {inv_full:.0},\n  \
         \"inversion_evals_per_sec\": {inv_inc:.0},\n  \
         \"inversion_speedup\": {inv_speedup:.2},\n  \
         \"ea_evals_per_sec\": {ea_eps:.0},\n  \
         \"ea_full_evals_per_sec\": {ea_full_eps:.0},\n  \
         \"ea_speedup\": {ea_speedup:.2},\n  \
         \"ea_island_evals_per_sec\": {ea_island_eps:.0},\n  \
         \"ea_island_scaling\": {ea_island_scaling:.2},\n  \
         \"checkpoint_save_us\": {ckpt_save:.1},\n  \
         \"checkpoint_resume_us\": {ckpt_resume:.1},\n  \
         \"checkpoint_overhead_pct\": {ckpt_ovhd:.2},\n  \
         \"ea_cache_hits\": {hits},\n  \"ea_cache_misses\": {misses},\n  \
         \"ea_cache_fallbacks\": {fallbacks}\n}}\n",
        k = BLOCK_LEN,
        l = NUM_MVS,
        distinct = histogram.num_distinct(),
        genomes = GENOMES,
        legacy = legacy_eps,
        kernel = kernel_eps,
        speedup = speedup,
        multiobjective = multiobjective_eps,
        multiobjective_overhead = multiobjective_overhead,
        chain_len = CHAIN_LEN,
        full_chain = full_chain_eps,
        incremental = incremental_eps,
        inc_speedup = incremental_speedup,
        mixed_full = mixed_full_eps,
        mixed_inc = mixed_inc_eps,
        mixed_speedup = multichunk_speedup,
        cross_full = cross_full_eps,
        cross_inc = cross_inc_eps,
        cross_speedup = crossover_speedup,
        inv_full = inv_full_eps,
        inv_inc = inv_inc_eps,
        inv_speedup = inversion_speedup,
        ea_eps = ea_eps,
        ea_full_eps = ea_full_eps,
        ea_speedup = ea_speedup,
        ckpt_save = checkpoint_save_us,
        ckpt_resume = checkpoint_resume_us,
        ckpt_ovhd = checkpoint_overhead_pct,
        hits = ea_cache.hits,
        misses = ea_cache.misses,
        fallbacks = ea_cache.fallbacks,
    );
    let path = "BENCH_fitness.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e} (numbers are above)"),
    }
}
