//! Quick fitness-kernel perf smoke: measures evaluations/second of the
//! legacy fitness path, the allocation-free bit-sliced kernel, and the
//! incremental (cache-patching) path under a single-gene mutation-chain
//! workload — all at the paper-default shape (K=12, L=64, shared
//! `fitness_fixture` workload) — and writes `BENCH_fitness.json` so the repo
//! carries a perf trajectory across PRs.
//!
//! Runs in a few seconds ("quick mode"). In CI the correctness gate runs
//! gating (`--check-only`) and the timed run is a separate non-gating step:
//! a slow shared runner must not fail the build, but a bitwise divergence
//! between any two paths must. Locally:
//!
//! ```text
//! cargo run --release -p evotc_bench --bin fitness_smoke
//! ```
//!
//! Exits non-zero only if the paths disagree on any genome or chain step (a
//! correctness failure, not a perf one).

use std::time::{Duration, Instant};

use evotc_bench::fitness_fixture::{paper_histogram, random_genomes, BLOCK_LEN, NUM_MVS};
use evotc_bits::Trit;
use evotc_core::{EvalCache, EvalScratch, MvFitness};
use evotc_evo::FitnessEval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const GENOMES: usize = 128;
/// Steps per single-gene mutation chain (the incremental workload).
const CHAIN_LEN: usize = 256;
/// Wall-clock budget per measured path; quick mode stays CI-friendly.
const MEASURE: Duration = Duration::from_millis(1500);

/// A deterministic single-gene mutation chain: the genomes the EA would see
/// when each child is its predecessor with one redrawn gene.
fn mutation_chain(start: &[Trit], steps: usize, seed: u64) -> Vec<(usize, Vec<Trit>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome = start.to_vec();
    let mut chain = Vec::with_capacity(steps);
    for _ in 0..steps {
        let pos = rng.gen_range(0..genome.len());
        genome[pos] = Trit::from_index(rng.gen_range(0..3u8));
        chain.push((pos, genome.clone()));
    }
    chain
}

/// Runs `eval_all` (which claims `per_pass` evaluations) repeatedly for the
/// budget and returns evaluations/sec.
fn throughput(per_pass: u64, mut eval_all: impl FnMut() -> f64) -> f64 {
    // Warm-up pass (first-touch allocations, cold caches).
    std::hint::black_box(eval_all());
    let start = Instant::now();
    let mut evals = 0u64;
    while start.elapsed() < MEASURE {
        std::hint::black_box(eval_all());
        evals += per_pass;
    }
    evals as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check-only");
    let (histogram, payload_bits) = paper_histogram();
    let fitness = MvFitness::new(BLOCK_LEN, true, &histogram, payload_bits);
    let genomes = random_genomes(GENOMES, BLOCK_LEN * NUM_MVS, 42);

    // Correctness gate 1: bit-identical fitness, kernel vs legacy, on every
    // random genome.
    let mut scratch = EvalScratch::new();
    for g in &genomes {
        let legacy = fitness.evaluate(g);
        let kernel = fitness.evaluate_scratch(g, &mut scratch);
        if legacy.to_bits() != kernel.to_bits() {
            eprintln!("FAIL: kernel {kernel} != legacy {legacy}");
            std::process::exit(1);
        }
    }

    // Correctness gate 2: the incremental path must match the full kernel
    // bit-for-bit on every step of a single-gene mutation chain.
    let chain = mutation_chain(&genomes[0], CHAIN_LEN, 7);
    let mut cache = EvalCache::new();
    let seed_fitness = fitness.evaluate_cached(&genomes[0], None, &mut cache);
    if seed_fitness.to_bits()
        != fitness
            .evaluate_scratch(&genomes[0], &mut scratch)
            .to_bits()
    {
        eprintln!("FAIL: incremental rebuild diverged on the chain seed");
        std::process::exit(1);
    }
    for (step, (pos, genome)) in chain.iter().enumerate() {
        let incremental = fitness.evaluate_cached(genome, Some(&(*pos..pos + 1)), &mut cache);
        let full = fitness.evaluate_scratch(genome, &mut scratch);
        if incremental.to_bits() != full.to_bits() {
            eprintln!("FAIL: incremental {incremental} != full {full} at chain step {step}");
            std::process::exit(1);
        }
    }
    if check_only {
        println!(
            "fitness kernel == legacy on {GENOMES} genomes; incremental == full on a \
             {CHAIN_LEN}-step mutation chain (K={BLOCK_LEN}, L={NUM_MVS})"
        );
        return;
    }

    let legacy_eps = throughput(GENOMES as u64, || {
        genomes.iter().map(|g| fitness.evaluate(g)).sum()
    });
    let mut scratch = EvalScratch::new();
    let kernel_eps = throughput(GENOMES as u64, || {
        genomes
            .iter()
            .map(|g| fitness.evaluate_scratch(g, &mut scratch))
            .sum()
    });
    let speedup = kernel_eps / legacy_eps;

    // The incremental workload: one full evaluation to seed the cache, then
    // CHAIN_LEN single-gene children priced from deltas. The full-kernel
    // reference prices exactly the same genomes from scratch.
    let per_pass = (CHAIN_LEN + 1) as u64;
    let mut scratch = EvalScratch::new();
    let full_chain_eps = throughput(per_pass, || {
        let mut acc = fitness.evaluate_scratch(&genomes[0], &mut scratch);
        for (_, genome) in &chain {
            acc += fitness.evaluate_scratch(genome, &mut scratch);
        }
        acc
    });
    let mut cache = EvalCache::new();
    let incremental_eps = throughput(per_pass, || {
        let mut acc = fitness.evaluate_cached(&genomes[0], None, &mut cache);
        for (pos, genome) in &chain {
            acc += fitness.evaluate_cached(genome, Some(&(*pos..pos + 1)), &mut cache);
        }
        acc
    });
    let incremental_speedup = incremental_eps / full_chain_eps;

    println!("workload             : s953 (K={BLOCK_LEN}, L={NUM_MVS})");
    println!("distinct blocks      : {}", histogram.num_distinct());
    println!("legacy eval/s        : {legacy_eps:.0}");
    println!("kernel eval/s        : {kernel_eps:.0}");
    println!("speedup              : {speedup:.2}x");
    println!("chain length         : {CHAIN_LEN}");
    println!("full-chain eval/s    : {full_chain_eps:.0}");
    println!("incremental eval/s   : {incremental_eps:.0}");
    println!("incremental speedup  : {incremental_speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"fitness_kernel\",\n  \"workload\": \"s953\",\n  \"k\": {k},\n  \
         \"l\": {l},\n  \"distinct_blocks\": {distinct},\n  \"genomes\": {genomes},\n  \
         \"legacy_evals_per_sec\": {legacy:.0},\n  \"kernel_evals_per_sec\": {kernel:.0},\n  \
         \"speedup\": {speedup:.2},\n  \"chain_len\": {chain_len},\n  \
         \"full_chain_evals_per_sec\": {full_chain:.0},\n  \
         \"incremental_evals_per_sec\": {incremental:.0},\n  \
         \"incremental_speedup\": {inc_speedup:.2}\n}}\n",
        k = BLOCK_LEN,
        l = NUM_MVS,
        distinct = histogram.num_distinct(),
        genomes = GENOMES,
        legacy = legacy_eps,
        kernel = kernel_eps,
        speedup = speedup,
        chain_len = CHAIN_LEN,
        full_chain = full_chain_eps,
        incremental = incremental_eps,
        inc_speedup = incremental_speedup,
    );
    let path = "BENCH_fitness.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e} (numbers are above)"),
    }
}
