//! Experiment harness: regenerates every table and figure of the paper.
//!
//! The binaries in `src/bin/` print markdown tables with the same columns
//! as the paper's Tables 1 and 2, plus the ablations called out in
//! `DESIGN.md`:
//!
//! | binary      | experiment |
//! |-------------|------------|
//! | `table1`    | stuck-at: 9C / 9C+HC / EA / EA-Best |
//! | `table2`    | path-delay: 9C / 9C+HC / EA1 / EA2 |
//! | `sweep`     | Ablation A — compression rate over the (K, L) grid |
//! | `operators` | Ablation B — EA parameter sensitivity |
//! | `seeding`   | Ablation C — 9C-seeded initial population |
//! | `baselines` | Baseline F — run-length / Golomb / FDR / selective Huffman |
//! | `tradeoff`  | Multi-objective compression / scan-power / decoder-area fronts |
//!
//! Every binary accepts `--full` for paper-scale runs; the default *quick*
//! profile caps test-set sizes and EA budgets so the whole table finishes
//! in minutes (see [`RunProfile`]). `EXPERIMENTS.md` records which profile
//! produced the committed numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use evotc_bits::TestSet;
use evotc_core::{EaCompressor, NineCCompressor, NineCHuffmanCompressor, TestCompressor};
use evotc_workloads::tables::{PathDelayRow, StuckAtRow};
use evotc_workloads::workload_with_limit;

/// Execution profile of a harness run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunProfile {
    /// Cap on generated test-set bits (the rates are density-driven and not
    /// size-sensitive; see DESIGN.md §2.5).
    pub size_limit: usize,
    /// EA stagnation limit (paper: 500).
    pub stagnation_limit: usize,
    /// EA evaluation budget per run.
    pub max_evaluations: u64,
    /// Runs to average (paper: 5).
    pub runs: usize,
    /// (K, L) grid searched for the EA-Best column.
    pub grid: &'static [(usize, usize)],
    /// Fitness-evaluation threads per EA run, and worker threads for batch
    /// workload construction (`0` = auto; results are identical for every
    /// value — see `evotc_evo::parallel`).
    pub threads: usize,
}

impl RunProfile {
    /// The interactive profile used by default.
    pub fn quick() -> Self {
        RunProfile {
            size_limit: 1 << 15,
            stagnation_limit: 25,
            max_evaluations: 1_500,
            runs: 2,
            grid: &[(8, 16), (12, 32)],
            threads: 0,
        }
    }

    /// Paper-scale parameters (hours of compute on the larger circuits).
    pub fn full() -> Self {
        RunProfile {
            size_limit: usize::MAX,
            stagnation_limit: 500,
            max_evaluations: u64::MAX,
            runs: 5,
            grid: &[
                (4, 16),
                (6, 9),
                (8, 9),
                (8, 16),
                (8, 64),
                (12, 32),
                (12, 64),
                (16, 64),
            ],
            threads: 0,
        }
    }

    /// Parses `--full` and `--threads N` / `--threads=N` from CLI arguments.
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let mut profile = if args.iter().any(|a| a == "--full") {
            RunProfile::full()
        } else {
            RunProfile::quick()
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let value = if let Some(v) = arg.strip_prefix("--threads=") {
                Some(v.to_string())
            } else if arg == "--threads" {
                iter.next().cloned()
            } else {
                None
            };
            if let Some(v) = value {
                profile.threads = v
                    .parse()
                    .unwrap_or_else(|_| panic!("--threads expects a number, got `{v}`"));
            }
        }
        profile
    }
}

/// Extracts the circuit-name filter from CLI arguments: everything that is
/// neither a `--flag` nor the value of a space-separated `--threads N`.
pub fn circuit_filter(args: &[String]) -> Vec<&String> {
    let mut filter = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threads" {
            let _ = iter.next(); // the count, not a circuit name
        } else if !arg.starts_with("--") {
            filter.push(arg);
        }
    }
    filter
}

/// One regenerated row of Table 1 or Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredRow {
    /// Circuit name.
    pub circuit: String,
    /// Bits actually compressed (after the profile's size cap).
    pub bits: usize,
    /// Measured 9C rate (%).
    pub rate_9c: f64,
    /// Measured 9C+HC rate (%).
    pub rate_9c_hc: f64,
    /// Measured EA rate (%), averaged over the profile's runs.
    pub rate_ea: f64,
    /// Measured second EA column (% — EA-Best for Table 1, EA2 for Table 2).
    pub rate_ea2: f64,
}

/// Builds an EA compressor with the profile's budget and thread count.
pub fn ea_compressor(k: usize, l: usize, seed: u64, profile: &RunProfile) -> EaCompressor {
    EaCompressor::builder(k, l)
        .seed(seed)
        .stagnation_limit(profile.stagnation_limit)
        .max_evaluations(profile.max_evaluations)
        .threads(profile.threads)
        .build()
}

/// Average EA rate over the profile's run count.
pub fn ea_average(set: &TestSet, k: usize, l: usize, profile: &RunProfile) -> f64 {
    let mut total = 0.0;
    for seed in 0..profile.runs as u64 {
        let rate = ea_compressor(k, l, seed, profile)
            .compress(set)
            .map(|c| c.rate_percent())
            .unwrap_or(f64::NEG_INFINITY);
        total += rate;
    }
    total / profile.runs as f64
}

/// Best single-run EA rate over the profile's (K, L) grid.
pub fn ea_best(set: &TestSet, profile: &RunProfile) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for &(k, l) in profile.grid {
        for seed in 0..profile.runs as u64 {
            let rate = ea_compressor(k, l, seed, profile)
                .compress(set)
                .map(|c| c.rate_percent())
                .unwrap_or(f64::NEG_INFINITY);
            best = best.max(rate);
        }
    }
    best
}

/// Regenerates one Table 1 row: 9C, 9C+HC, EA (K=12, L=64 average) and
/// EA-Best (grid maximum).
pub fn run_stuck_at_row(row: &StuckAtRow, profile: &RunProfile) -> MeasuredRow {
    let set = workload_with_limit(
        row.circuit,
        row.test_set_bits,
        row.rate_9c,
        1,
        profile.size_limit,
        1,
    );
    measure_row(row.circuit, &set, (12, 64), None, profile)
}

/// Regenerates one Table 2 row: 9C, 9C+HC, EA1 (K=8, L=9) and
/// EA2 (K=12, L=64).
pub fn run_path_delay_row(row: &PathDelayRow, profile: &RunProfile) -> MeasuredRow {
    let set = workload_with_limit(
        row.circuit,
        row.test_set_bits,
        row.rate_9c,
        1,
        profile.size_limit,
        2,
    );
    measure_row(row.circuit, &set, (8, 9), Some((12, 64)), profile)
}

/// Regenerates many Table 1 rows, building the calibrated workloads on the
/// profile's worker threads first (see `evotc_workloads::parallel`), then
/// measuring each row. Output order and values match calling
/// [`run_stuck_at_row`] per row.
pub fn run_stuck_at_rows(rows: &[&StuckAtRow], profile: &RunProfile) -> Vec<MeasuredRow> {
    let threads = evotc_evo::parallel::resolve_threads(profile.threads);
    let sets = evotc_workloads::stuck_at_workloads(rows, 1, profile.size_limit, threads);
    rows.iter()
        .zip(&sets)
        .map(|(row, set)| measure_row(row.circuit, set, (12, 64), None, profile))
        .collect()
}

/// Regenerates many Table 2 rows; the path-delay counterpart of
/// [`run_stuck_at_rows`].
pub fn run_path_delay_rows(rows: &[&PathDelayRow], profile: &RunProfile) -> Vec<MeasuredRow> {
    let threads = evotc_evo::parallel::resolve_threads(profile.threads);
    let sets = evotc_workloads::path_delay_workloads(rows, 1, profile.size_limit, threads);
    rows.iter()
        .zip(&sets)
        .map(|(row, set)| measure_row(row.circuit, set, (8, 9), Some((12, 64)), profile))
        .collect()
}

fn measure_row(
    circuit: &str,
    set: &TestSet,
    ea_params: (usize, usize),
    second_ea: Option<(usize, usize)>,
    profile: &RunProfile,
) -> MeasuredRow {
    let rate = |c: &dyn TestCompressor| {
        c.compress(set)
            .map(|r| r.rate_percent())
            .unwrap_or(f64::NEG_INFINITY)
    };
    let rate_9c = rate(&NineCCompressor::new(8));
    let rate_9c_hc = rate(&NineCHuffmanCompressor::new(8));
    let rate_ea = ea_average(set, ea_params.0, ea_params.1, profile);
    let rate_ea2 = match second_ea {
        Some((k, l)) => ea_average(set, k, l, profile),
        None => ea_best(set, profile).max(rate_ea),
    };
    MeasuredRow {
        circuit: circuit.to_string(),
        bits: set.total_bits(),
        rate_9c,
        rate_9c_hc,
        rate_ea,
        rate_ea2,
    }
}

/// Renders measured rows as a markdown table; `headers` names the last two
/// (EA) columns.
pub fn markdown_table(rows: &[MeasuredRow], headers: (&str, &str)) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| circuit | bits | 9C | 9C+HC | {} | {} |",
        headers.0, headers.1
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.circuit, r.bits, r.rate_9c, r.rate_9c_hc, r.rate_ea, r.rate_ea2
        );
    }
    let n = rows.len() as f64;
    let _ = writeln!(
        out,
        "| **average** | | **{:.1}** | **{:.1}** | **{:.1}** | **{:.1}** |",
        rows.iter().map(|r| r.rate_9c).sum::<f64>() / n,
        rows.iter().map(|r| r.rate_9c_hc).sum::<f64>() / n,
        rows.iter().map(|r| r.rate_ea).sum::<f64>() / n,
        rows.iter().map(|r| r.rate_ea2).sum::<f64>() / n,
    );
    out
}

/// Shared fixtures for the fitness-kernel measurements, used by both the
/// `fitness_kernel` criterion bench and the `fitness_smoke` binary so the
/// two can never drift apart on workload or genome recipe.
pub mod fitness_fixture {
    use evotc_bits::{BlockHistogram, TestSetString, Trit};
    use evotc_workloads::{synth, tables, workload_with_limit};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The paper-default shape: block length `K = 12`.
    pub const BLOCK_LEN: usize = 12;
    /// The paper-default shape: `L = 64` matching vectors.
    pub const NUM_MVS: usize = 64;

    /// Uniformly random genomes over `{0, 1, U}`, seeded — the population
    /// the EA's initial generation scores.
    pub fn random_genomes(n: usize, genome_len: usize, seed: u64) -> Vec<Vec<Trit>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..genome_len)
                    .map(|_| Trit::from_index(rng.gen_range(0..3u8)))
                    .collect()
            })
            .collect()
    }

    /// The calibrated s953 stuck-at workload at `K = 12`: histogram plus
    /// uncompressed payload bits (the fitness denominator).
    pub fn paper_histogram() -> (BlockHistogram, f64) {
        let row = tables::stuck_at_row("s953").expect("s953 is a Table 1 row");
        let set = workload_with_limit(row.circuit, row.test_set_bits, row.rate_9c, 1, 1 << 14, 1);
        let string = TestSetString::try_new(&set, BLOCK_LEN).expect("K=12 fits the workload");
        let bits = string.payload_bits() as f64;
        (BlockHistogram::from_string(&string), bits)
    }

    /// A deliberately large synthetic set: many distinct blocks stress the
    /// bit-sliced covering scan rather than the Huffman tail.
    pub fn synthetic_histogram() -> (BlockHistogram, f64) {
        let mut spec = synth::SyntheticSpec::new(96, 1 << 17, 7);
        spec.specified_density = 0.7;
        let set = synth::generate(&spec);
        let string = TestSetString::try_new(&set, BLOCK_LEN).expect("K=12 fits the synth set");
        let bits = string.payload_bits() as f64;
        (BlockHistogram::from_string(&string), bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evotc_workloads::tables;

    fn tiny_profile() -> RunProfile {
        RunProfile {
            size_limit: 2_000,
            stagnation_limit: 10,
            max_evaluations: 300,
            runs: 1,
            grid: &[(8, 9)],
            threads: 0,
        }
    }

    #[test]
    fn stuck_at_row_produces_sane_rates() {
        let row = tables::stuck_at_row("s349").unwrap();
        let m = run_stuck_at_row(row, &tiny_profile());
        assert_eq!(m.circuit, "s349");
        assert!(m.rate_9c > -100.0 && m.rate_9c < 90.0);
        // Huffman can only help over the fixed code.
        assert!(m.rate_9c_hc >= m.rate_9c - 1e-9);
        // EA-Best includes the EA average as a lower bound.
        assert!(m.rate_ea2 >= m.rate_ea - 1e-9);
    }

    #[test]
    fn path_delay_row_runs() {
        let row = tables::path_delay_row("s27").unwrap();
        let m = run_path_delay_row(row, &tiny_profile());
        assert_eq!(m.bits % 14, 0); // width 2*7
    }

    #[test]
    fn markdown_has_header_and_average() {
        let rows = vec![MeasuredRow {
            circuit: "x".into(),
            bits: 100,
            rate_9c: 1.0,
            rate_9c_hc: 2.0,
            rate_ea: 3.0,
            rate_ea2: 4.0,
        }];
        let md = markdown_table(&rows, ("EA", "EA-Best"));
        assert!(md.contains("| circuit |"));
        assert!(md.contains("**average**"));
    }

    #[test]
    fn profile_flag_parsing() {
        assert_eq!(
            RunProfile::from_args(vec!["--full".to_string()]),
            RunProfile::full()
        );
        assert_eq!(RunProfile::from_args(Vec::new()), RunProfile::quick());
        let threaded = RunProfile::from_args(vec!["--threads".into(), "4".into()]);
        assert_eq!(threaded.threads, 4);
        assert_eq!(
            RunProfile::from_args(vec!["--full".into(), "--threads=2".into()]).threads,
            2
        );
    }

    #[test]
    fn circuit_filter_skips_flags_and_thread_counts() {
        let args: Vec<String> = ["--full", "--threads", "4", "s349", "--threads=2", "s27"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let filter = circuit_filter(&args);
        assert_eq!(filter, [&"s349".to_string(), &"s27".to_string()]);
        assert!(circuit_filter(&["--threads".to_string(), "8".to_string()]).is_empty());
    }

    #[test]
    fn batch_row_runner_matches_per_row_runner() {
        let profile = tiny_profile();
        let rows: Vec<&tables::StuckAtRow> = tables::TABLE1[..2].iter().collect();
        let batch = run_stuck_at_rows(&rows, &profile);
        for (row, measured) in rows.iter().zip(&batch) {
            assert_eq!(measured, &run_stuck_at_row(row, &profile));
        }
    }
}
