//! The full paper pipeline on a real circuit: PODEM ATPG with don't-care
//! extraction on s27, then code-based compression and decoder verification.
//!
//! Run with: `cargo run --release --example stuck_at_flow`

use evotc::atpg::{generate_stuck_at_tests, StuckAtConfig};
use evotc::core::{EaCompressor, NineCHuffmanCompressor, TestCompressor};
use evotc::decoder::DecoderFsm;
use evotc::netlist::{iscas, parse_bench};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse_bench(iscas::S27_BENCH)?;
    println!("circuit: {circuit}");

    let outcome = generate_stuck_at_tests(&circuit, &StuckAtConfig::default());
    println!(
        "ATPG: {} patterns for {} collapsed faults, coverage {:.1}%, {:.0}% don't-cares",
        outcome.tests.num_patterns(),
        outcome.num_faults,
        100.0 * outcome.fault_coverage(),
        100.0 * outcome.tests.x_density()
    );

    let ninec = NineCHuffmanCompressor::new(6).compress(&outcome.tests)?;
    let ea = EaCompressor::builder(6, 8)
        .seed(3)
        .stagnation_limit(100)
        .build()
        .compress(&outcome.tests)?;
    println!("{ninec}");
    println!("{ea}");

    // Feed the EA stream through the cycle-accurate decoder model.
    DecoderFsm::verify_against_reference(&ea);
    println!("decoder FSM verified against the reference decoder");
    Ok(())
}
