//! Path-delay workload (Table 2 style): robust two-pattern tests on c17,
//! compressed with EA1/EA2 parameters from the paper.
//!
//! Run with: `cargo run --release --example path_delay_flow`

use evotc::atpg::{generate_path_delay_tests, PathDelayConfig};
use evotc::core::{EaCompressor, NineCCompressor, TestCompressor};
use evotc::netlist::{iscas, parse_bench};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse_bench(iscas::C17_BENCH)?;
    let outcome = generate_path_delay_tests(&circuit, &PathDelayConfig::default());
    println!(
        "robust path-delay ATPG on c17: {} paths, {} robust tests, {} untestable targets",
        outcome.paths_considered, outcome.robust_tests, outcome.untestable_or_aborted
    );
    println!(
        "two-pattern test set: {} rows x {} bits ({:.0}% don't-cares)\n",
        outcome.tests.num_patterns(),
        outcome.tests.width(),
        100.0 * outcome.tests.x_density()
    );

    let ninec = NineCCompressor::new(8).compress(&outcome.tests)?;
    // EA1 = (K=8, L=9), EA2 = (K=12, L=64): the paper's Table 2 columns.
    let ea1 = EaCompressor::builder(8, 9)
        .seed(1)
        .stagnation_limit(60)
        .build();
    let ea2 = EaCompressor::builder(12, 16)
        .seed(1)
        .stagnation_limit(60)
        .build();
    println!("{ninec}");
    println!("{}", ea1.compress(&outcome.tests)?);
    println!("{}", ea2.compress(&outcome.tests)?);
    Ok(())
}
