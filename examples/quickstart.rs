//! Quickstart: compress a small test set with the 9C baseline and the EA,
//! then decompress and verify.
//!
//! Run with: `cargo run --example quickstart`

use evotc::bits::TestSet;
use evotc::core::{EaCompressor, NineCCompressor, NineCHuffmanCompressor, TestCompressor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An uncompacted test set with don't-cares (X), as ATPG would emit it.
    let set = TestSet::parse(&[
        "110100XX11010011",
        "110000XX1101XXXX",
        "11010000110100XX",
        "110X00XXXXXX0011",
        "11010011110100XX",
        "000011110000XXXX",
    ])?;
    println!(
        "test set: {} patterns x {} bits, {:.0}% don't-cares\n",
        set.num_patterns(),
        set.width(),
        100.0 * set.x_density()
    );

    for compressor in [
        Box::new(NineCCompressor::new(8)) as Box<dyn TestCompressor>,
        Box::new(NineCHuffmanCompressor::new(8)),
        Box::new(
            EaCompressor::builder(8, 8)
                .seed(1)
                .stagnation_limit(80)
                .build(),
        ),
    ] {
        let compressed = compressor.compress(&set)?;
        println!("{compressed}");
        // Code-based compression precisely reproduces the encoded test set.
        let restored = compressed.decompress()?;
        assert!(set.is_refined_by(&restored));
    }
    println!("\nall schemes verified lossless (modulo don't-care fill)");
    Ok(())
}
