//! The reconfigurable decoder from the paper's conclusions: load tables for
//! one test set, decompress, reload for a modified test set — no redesign.
//!
//! Run with: `cargo run --release --example decoder_roundtrip`

use evotc::bits::TestSet;
use evotc::core::{EaCompressor, TestCompressor};
use evotc::decoder::{HardwareCost, ReconfigurableDecoder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set_a = TestSet::parse(&["11010011", "110100XX", "0000XXXX", "00001111"])?;
    let set_b = TestSet::parse(&["10101010", "1010XXXX", "01010101"])?;

    let ea = EaCompressor::builder(8, 6)
        .seed(4)
        .stagnation_limit(60)
        .build();
    let a = ea.compress(&set_a)?;
    let b = ea.compress(&set_b)?;

    println!("test set A: {a}");
    println!(
        "  hard-wired decoder cost: {}",
        HardwareCost::estimate(a.mv_set(), a.code())
    );
    println!("test set B: {b}");
    println!(
        "  hard-wired decoder cost: {}",
        HardwareCost::estimate(b.mv_set(), b.code())
    );

    let mut device = ReconfigurableDecoder::new(16, 16);
    println!(
        "\nreconfigurable device (16 MVs x 16 bits): {}",
        device.device_cost()
    );

    device.load(a.mv_set().clone(), a.code().clone())?;
    assert!(set_a.is_refined_by(&device.decompress(&a)?));
    device.load(b.mv_set().clone(), b.code().clone())?;
    assert!(set_b.is_refined_by(&device.decompress(&b)?));
    println!(
        "decoded both test sets after {} table loads — no redesign",
        device.reloads()
    );
    Ok(())
}
