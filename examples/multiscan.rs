//! The paper's future-work extension: compression in a multiple scan chain
//! environment — split the test set across chains, one decoder per chain.
//!
//! Run with: `cargo run --release --example multiscan`

use evotc::core::{multiscan, NineCHuffmanCompressor, TestCompressor};
use evotc::workloads::synth::{generate, SyntheticSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = generate(&SyntheticSpec {
        width: 64,
        total_bits: 64 * 200,
        specified_density: 0.35,
        one_bias: 0.3,
        seed: 5,
    });
    let single = NineCHuffmanCompressor::new(8).compress(&set)?;
    println!("single chain : {single}");
    for chains in [2usize, 4, 8] {
        let result = multiscan::compress_chains(&set, chains, &NineCHuffmanCompressor::new(8))?;
        println!("{chains:>2} chains   : {result}");
    }
    Ok(())
}
