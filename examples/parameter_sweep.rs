//! A miniature version of the paper's K/L exploration: how block length and
//! matching-vector count trade off on one calibrated workload.
//!
//! Run with: `cargo run --release --example parameter_sweep`

use evotc::core::EaCompressor;
use evotc::workloads::synth::{generate, SyntheticSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let set = generate(&SyntheticSpec {
        width: 24,
        total_bits: 24 * 300,
        specified_density: 0.45,
        one_bias: 0.35,
        seed: 11,
    });
    println!(
        "workload: {} bits, {:.0}% don't-cares\n",
        set.total_bits(),
        100.0 * set.x_density()
    );
    println!("{:>4} {:>4} {:>10} {:>12}", "K", "L", "rate (%)", "eval/s");
    for k in [4usize, 8, 12] {
        for l in [4usize, 9, 16] {
            // threads(0) = auto: fitness evaluation spreads across the
            // machine's cores; the rate is identical for any thread count.
            let (compressed, summary) = EaCompressor::builder(k, l)
                .seed(2)
                .stagnation_limit(25)
                .max_evaluations(1_000)
                .threads(0)
                .build()
                .compress_with_summary(&set)?;
            println!(
                "{k:>4} {l:>4} {:>10.1} {:>12.0}",
                compressed.rate_percent(),
                summary.evaluations_per_sec()
            );
        }
    }
    Ok(())
}
