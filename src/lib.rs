//! # evotc — Evolutionary Optimization in Code-Based Test Compression
//!
//! A full reproduction of Polian, Czutro, Becker, *Evolutionary Optimization
//! in Code-Based Test Compression* (DATE 2005), including every substrate
//! the paper depends on: the tri-state test-data model, Huffman/prefix
//! coding, a GAME-style evolutionary-algorithm engine, the 9C baseline, an
//! ISCAS netlist/simulation/ATPG stack for producing uncompacted test sets
//! with don't-cares, on-chip decoder models, and the calibrated workloads
//! used to regenerate the paper's tables.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names so applications can depend on a single crate.
//!
//! ```
//! use evotc::bits::TestSet;
//! use evotc::core::{EaCompressor, NineCCompressor, TestCompressor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = TestSet::parse(&["110X10XX", "1101XXXX", "000011XX", "0000XXXX"])?;
//! let ninec = NineCCompressor::new(8).compress(&set)?;
//! let ea = EaCompressor::builder(8, 4).seed(7).build().compress(&set)?;
//! assert!(ea.compressed_bits <= ninec.compressed_bits);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

/// Tri-state test data model: patterns, test sets, input blocks, bit streams.
pub use evotc_bits as bits;

/// Prefix/Huffman coding and classic baseline coders.
pub use evotc_codes as codes;

/// Generic evolutionary-algorithm engine (GAME-style).
pub use evotc_evo as evo;

/// Gate-level netlists, `.bench` parsing, circuit generation.
pub use evotc_netlist as netlist;

/// Logic and fault simulation.
pub use evotc_sim as sim;

/// PODEM ATPG with don't-care extraction and path-delay generation.
pub use evotc_atpg as atpg;

/// The paper's contribution: matching-vector compression with EA search.
pub use evotc_core as core;

/// On-chip decoder models and hardware-cost estimation.
pub use evotc_decoder as decoder;

/// ISCAS workload metadata, ground-truth tables, calibrated generators.
pub use evotc_workloads as workloads;

/// Multi-tenant compression-as-a-service job runtime: bounded priority
/// queue with admission control, worker pool, retry/backoff, circuit
/// breakers, overload shedding, cross-run result cache.
pub use evotc_service as service;
